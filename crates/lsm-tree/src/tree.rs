//! The LSM-tree facade: requests in, merges down, lookups across levels.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use observe::{Event, SinkHandle, SpanGuard, SpanOp};

use sim_ssd::BlockDevice;

use crate::block::BLOCK_HEADER_LEN;
use crate::config::{CommitMode, LsmConfig, Scheduler};
use crate::error::{LsmError, Result};
use crate::level::Level;
use crate::memtable::Memtable;
use crate::merge::{MergeEngine, MergeSource};
use crate::policy::ledger::{enumerate_candidates, DecisionLedger};
use crate::policy::window::{runs_of_handles, window_overlap};
use crate::policy::{MergeChoice, MergeCtx, MergePolicy, PolicySpec};
use crate::record::{Key, OpKind, Request};
use crate::stats::{MergeKind, TreeStats};
use crate::store::{RetryPolicy, Store};

/// Behavioural options of a tree, orthogonal to the data geometry.
///
/// Construct via [`TreeOptions::builder`]; the struct is `#[non_exhaustive]`
/// so options can grow without breaking downstream code:
///
/// ```
/// use lsm_tree::{PolicySpec, TreeOptions};
///
/// let opts = TreeOptions::builder()
///     .policy(PolicySpec::ChooseBest)
///     .preserve_blocks(false)
///     .build();
/// assert!(!opts.preserve_blocks);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TreeOptions {
    /// Which merge policy runs the index.
    pub policy: PolicySpec,
    /// Block-preserving merges (§II-B). The paper's "-P" policy variants
    /// set this to `false`.
    pub preserve_blocks: bool,
    /// Enforce the pairwise waste constraint (§II-B). Only the ablation
    /// harness ever sets this to false.
    pub enforce_pairwise: bool,
    /// Enforce the level-wise waste constraint via compactions (§II-B).
    /// Only the ablation harness ever sets this to false.
    pub enforce_level_waste: bool,
    /// Event sink registered at construction; every layer (device, cache,
    /// merges, WAL) reports through it. Defaults to detached.
    pub sink: SinkHandle,
    /// Bounded retry-with-backoff for transient device errors (see
    /// [`RetryPolicy`]). Defaults to 4 attempts, 50 µs base backoff.
    pub retry: RetryPolicy,
    /// Optional decision ledger recording every merge decision's candidate
    /// table, prediction, and reconciled actual cost. When absent (the
    /// default) candidates are never enumerated, so the ledger costs
    /// nothing on the device image or the tree's counters.
    pub ledger: Option<Arc<DecisionLedger>>,
    /// How flush/merge maintenance runs: inline on the triggering request
    /// (the default — deterministic, byte-identical to the historical
    /// behaviour) or on a background worker pool owned by the concurrent
    /// front-ends. See [`Scheduler`].
    pub scheduler: Scheduler,
    /// WAL commit discipline for WAL-backed front-ends. See [`CommitMode`].
    pub commit: CommitMode,
    /// Stepped-merge fan-in `k` — runs accumulated per level before they
    /// are merge-sorted one level down. Used only by
    /// [`crate::SteppedMergeTree`]; must be ≥ 2. Default 4.
    pub stepped_fan_in: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            policy: PolicySpec::ChooseBest,
            preserve_blocks: true,
            enforce_pairwise: true,
            enforce_level_waste: true,
            sink: SinkHandle::none(),
            retry: RetryPolicy::default(),
            ledger: None,
            scheduler: Scheduler::Inline,
            commit: CommitMode::Buffered,
            stepped_fan_in: 4,
        }
    }
}

impl TreeOptions {
    /// Start building options from the defaults.
    pub fn builder() -> TreeOptionsBuilder {
        TreeOptionsBuilder::default()
    }
}

/// Builder for [`TreeOptions`]. Every setter has the default documented on
/// the corresponding [`TreeOptions`] field.
#[derive(Debug, Clone, Default)]
pub struct TreeOptionsBuilder {
    opts: TreeOptions,
}

impl TreeOptionsBuilder {
    /// Select the merge policy (default: [`PolicySpec::ChooseBest`]).
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.opts.policy = policy;
        self
    }

    /// Enable or disable block-preserving merges (default: enabled).
    pub fn preserve_blocks(mut self, on: bool) -> Self {
        self.opts.preserve_blocks = on;
        self
    }

    /// Enable or disable the pairwise waste constraint (default: enabled).
    pub fn enforce_pairwise(mut self, on: bool) -> Self {
        self.opts.enforce_pairwise = on;
        self
    }

    /// Enable or disable the level-wise waste constraint (default: enabled).
    pub fn enforce_level_waste(mut self, on: bool) -> Self {
        self.opts.enforce_level_waste = on;
        self
    }

    /// Register an event sink (default: detached).
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.opts.sink = sink;
        self
    }

    /// Set the transient-error retry policy (default: 4 attempts, 50 µs
    /// base backoff; use [`RetryPolicy::none`] to fail fast).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.opts.retry = retry;
        self
    }

    /// Attach a decision ledger (default: none). The same ledger may be
    /// shared with post-mortem tooling; it survives policy swaps because
    /// it lives on the tree, not the policy.
    pub fn ledger(mut self, ledger: Arc<DecisionLedger>) -> Self {
        self.opts.ledger = Some(ledger);
        self
    }

    /// Choose how flush/merge maintenance runs (default:
    /// [`Scheduler::Inline`]). [`Scheduler::background`] moves merges onto
    /// the worker pool of the concurrent front-ends.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.opts.scheduler = scheduler;
        self
    }

    /// Choose the WAL commit discipline (default: [`CommitMode::Buffered`]).
    /// [`CommitMode::Group`] makes N concurrent writers share one fsync.
    pub fn group_commit(mut self, mode: CommitMode) -> Self {
        self.opts.commit = mode;
        self
    }

    /// Stepped-merge fan-in `k ≥ 2` (default 4). Only
    /// [`crate::SteppedMergeTree`] reads it.
    pub fn stepped_fan_in(mut self, k: usize) -> Self {
        self.opts.stepped_fan_in = k;
        self
    }

    /// Finish, yielding the options.
    pub fn build(self) -> TreeOptions {
        self.opts
    }
}

/// Which memtable a flush-merge drains from (see `merge_from_mem`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum MemSlot {
    /// The live memtable — the inline cascade path.
    Active,
    /// The oldest sealed memtable on the immutable queue — the
    /// background-maintenance path.
    ImmOldest,
}

/// What a single lookup cost: counted by the shared lookup path and folded
/// into [`TreeStats`] by [`LsmTree::get`] (discarded by [`LsmTree::peek`]).
/// The fold goes through relaxed atomics, so `get` works through `&self`
/// and concurrent readers are all counted.
#[derive(Debug, Clone, Copy, Default)]
struct LookupProbe {
    bloom_skips: u64,
    block_reads: u64,
}

/// An LSM-tree over a block device.
pub struct LsmTree {
    cfg: LsmConfig,
    preserve_blocks: bool,
    enforce_pairwise: bool,
    enforce_level_waste: bool,
    store: Store,
    mem: Memtable,
    /// Sealed memtables awaiting a background flush, oldest first. Always
    /// empty under [`Scheduler::Inline`] (the inline cascade never seals).
    imm: VecDeque<Memtable>,
    /// On-SSD levels; `levels[i]` is paper-level `L_{i+1}`.
    levels: Vec<Level>,
    policy: Box<dyn MergePolicy>,
    policy_name: &'static str,
    /// RR cursor for merges out of L0 (cursors of on-SSD levels live in
    /// the levels themselves).
    mem_rr_cursor: Option<Key>,
    stats: TreeStats,
    sink: SinkHandle,
    ledger: Option<Arc<DecisionLedger>>,
    scheduler: Scheduler,
    commit: CommitMode,
}

impl LsmTree {
    /// Create a tree over an existing device.
    pub fn new(cfg: LsmConfig, opts: TreeOptions, device: Arc<dyn BlockDevice>) -> Result<Self> {
        let cfg = cfg.validated()?;
        if device.block_size() != cfg.block_size {
            return Err(LsmError::Config(format!(
                "device block size {} != configured {}",
                device.block_size(),
                cfg.block_size
            )));
        }
        let store =
            Store::new(device, cfg.cache_blocks, cfg.bloom_bits_per_key).with_retry(opts.retry);
        store.set_sink(opts.sink.clone());
        let policy = opts.policy.build();
        let policy_name = policy.name();
        Ok(LsmTree {
            cfg,
            preserve_blocks: opts.preserve_blocks,
            enforce_pairwise: opts.enforce_pairwise,
            enforce_level_waste: opts.enforce_level_waste,
            store,
            mem: Memtable::new(),
            imm: VecDeque::new(),
            levels: vec![Level::new()],
            policy,
            policy_name,
            mem_rr_cursor: None,
            stats: TreeStats::default(),
            sink: opts.sink,
            ledger: opts.ledger,
            scheduler: opts.scheduler,
            commit: opts.commit,
        })
    }

    /// Create a tree over a fresh in-memory simulated SSD of
    /// `device_blocks` blocks.
    pub fn with_mem_device(cfg: LsmConfig, opts: TreeOptions, device_blocks: u64) -> Result<Self> {
        let dev = Arc::new(sim_ssd::MemDevice::with_block_size(device_blocks, cfg.block_size));
        Self::new(cfg, opts, dev)
    }

    /// Assemble a tree from recovered parts (the manifest restore path).
    pub(crate) fn assemble(
        cfg: LsmConfig,
        opts: TreeOptions,
        store: Store,
        mem: Memtable,
        levels: Vec<Level>,
        mem_rr_cursor: Option<Key>,
    ) -> Self {
        debug_assert!(!levels.is_empty());
        store.set_sink(opts.sink.clone());
        let policy = opts.policy.build();
        let policy_name = policy.name();
        LsmTree {
            cfg,
            preserve_blocks: opts.preserve_blocks,
            enforce_pairwise: opts.enforce_pairwise,
            enforce_level_waste: opts.enforce_level_waste,
            store,
            mem,
            imm: VecDeque::new(),
            levels,
            policy,
            policy_name,
            mem_rr_cursor,
            stats: TreeStats::default(),
            sink: opts.sink,
            ledger: opts.ledger,
            scheduler: opts.scheduler,
            commit: opts.commit,
        }
    }

    /// L0's round-robin cursor (persisted by checkpoints).
    pub fn mem_rr_cursor(&self) -> Option<Key> {
        self.mem_rr_cursor
    }

    // ------------------------------------------------------------------
    // Modification requests
    // ------------------------------------------------------------------

    /// Insert or update `key`.
    pub fn put(&mut self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.apply(Request::Put(key, payload.into()))
    }

    /// Delete `key`.
    pub fn delete(&mut self, key: Key) -> Result<()> {
        self.apply(Request::Delete(key))
    }

    /// Apply one request and run any merges it triggers.
    ///
    /// The whole call is one [`SpanOp::put`] span; the cascade (if the
    /// memtable overflowed) nests inside it, so a trace partitions the
    /// front-end latency into memtable-insert time plus cascade time.
    pub fn apply(&mut self, req: Request) -> Result<()> {
        let _span = self.sink.span(SpanOp::put());
        self.apply_unspanned(req)
    }

    /// [`LsmTree::apply`] without the enclosing put span — for front-ends
    /// (the shared and sharded wrappers) that already opened one covering
    /// their lock wait and WAL work, so the tree must not nest a second.
    pub(crate) fn apply_unspanned(&mut self, req: Request) -> Result<()> {
        self.note_request(&req)?;
        self.mem.apply(req);
        self.run_cascade()
    }

    /// Validate and count one request (shared by the inline and buffered
    /// write paths).
    fn note_request(&mut self, req: &Request) -> Result<()> {
        match req {
            Request::Put(_, payload) => {
                let record_bytes = 13 + payload.len();
                let room = self.cfg.block_size - BLOCK_HEADER_LEN;
                if record_bytes > room {
                    return Err(LsmError::RecordTooLarge {
                        record_bytes,
                        block_payload_bytes: room,
                    });
                }
                self.stats.puts += 1;
            }
            Request::Delete(_) => self.stats.deletes += 1,
        }
        Ok(())
    }

    /// Apply one request to the active memtable *without* running merges —
    /// the foreground half of the background write path. The caller (a
    /// concurrent front-end running [`Scheduler::Background`]) is
    /// responsible for sealing the memtable when
    /// [`LsmTree::mem_at_capacity`] and driving [`LsmTree::maintenance_step`]
    /// from its worker pool.
    pub fn apply_buffered(&mut self, req: Request) -> Result<()> {
        self.note_request(&req)?;
        self.mem.apply(req);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookups
    // ------------------------------------------------------------------

    /// Point lookup: newest visible version of `key`, if any.
    ///
    /// Caching contract: any block probed on the way down goes through the
    /// buffer cache, refreshing its LRU recency and counting toward cache
    /// hit/miss statistics — exactly like [`LsmTree::peek`]. `get`
    /// additionally updates the tree's own [`TreeStats`] lookup counters.
    /// Those counters are relaxed atomics, so `get` takes `&self` and
    /// concurrent readers (e.g. through [`crate::shared::SharedLsmTree`])
    /// are all accounted rather than silently dropped.
    pub fn get(&self, key: Key) -> Result<Option<Bytes>> {
        let _span = self.sink.span(SpanOp::lookup());
        self.stats.note_lookup();
        let (value, probe) = self.lookup(key)?;
        self.stats.note_lookup_costs(probe.block_reads, probe.bloom_skips);
        Ok(value)
    }

    /// Read-only point lookup that leaves [`TreeStats`] untouched — the
    /// documented no-stats path for probes that must not perturb the
    /// measurement (doctors, verifiers, learner probes).
    ///
    /// Caching contract: identical block-probing path as [`LsmTree::get`]
    /// (blocks read through the buffer cache touch LRU recency and cache
    /// statistics); only the per-tree lookup counters are skipped.
    pub fn peek(&self, key: Key) -> Result<Option<Bytes>> {
        self.lookup(key).map(|(value, _)| value)
    }

    /// The one lookup path behind [`LsmTree::get`] and [`LsmTree::peek`]:
    /// memtable first, then each level top-down, consulting per-block Bloom
    /// filters and reading candidate blocks through the cache. Returns the
    /// visible value plus the probe counts for the caller to account (or
    /// discard).
    fn lookup(&self, key: Key) -> Result<(Option<Bytes>, LookupProbe)> {
        let mut probe = LookupProbe::default();
        if let Some(r) = self.mem.get(key) {
            let value = match r.op {
                OpKind::Put => Some(r.payload.clone()),
                OpKind::Delete => None,
            };
            return Ok((value, probe));
        }
        // Sealed memtables are older than the active one but newer than
        // every on-SSD level: probe newest-first.
        for imm in self.imm.iter().rev() {
            if let Some(r) = imm.get(key) {
                let value = match r.op {
                    OpKind::Put => Some(r.payload.clone()),
                    OpKind::Delete => None,
                };
                return Ok((value, probe));
            }
        }
        for level in &self.levels {
            let Some(handle) = level.find_block_for(key) else { continue };
            if let Some(bloom) = &handle.bloom {
                if !bloom.may_contain(key) {
                    probe.bloom_skips += 1;
                    continue;
                }
            }
            let block = self.store.read_block(handle)?;
            probe.block_reads += 1;
            if let Some(r) = block.find(key) {
                let value = match r.op {
                    OpKind::Put => Some(r.payload.clone()),
                    OpKind::Delete => None,
                };
                return Ok((value, probe));
            }
        }
        Ok((None, probe))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Static configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.cfg
    }

    /// Height `h` — number of levels including L0.
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    /// The on-SSD levels; index `i` is paper-level `L_{i+1}`.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The memory-resident L0.
    pub fn memtable(&self) -> &Memtable {
        &self.mem
    }

    /// Storage services (device counters, cache statistics).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Cost counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// Total records in the index (upper bound: shadowed versions and
    /// tombstones count until merges consolidate them).
    pub fn record_count(&self) -> u64 {
        self.mem.len() as u64
            + self.imm.iter().map(|m| m.len() as u64).sum::<u64>()
            + self.levels.iter().map(Level::records).sum::<u64>()
    }

    /// Approximate logical size in bytes.
    pub fn approx_bytes(&self) -> u64 {
        self.record_count() * self.cfg.record_size() as u64
    }

    /// Replace the merge policy (the Mixed learner uses this between
    /// measurements; data and statistics are unaffected).
    pub fn set_policy(&mut self, policy: Box<dyn MergePolicy>) {
        self.policy_name = policy.name();
        self.policy = policy;
    }

    /// Register (or detach, with [`SinkHandle::none`]) the event sink. The
    /// registration propagates to every layer: tree-level merge events plus
    /// the store's cache and device events all flow to the same sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.store.set_sink(sink.clone());
        self.sink = sink;
    }

    /// The currently registered sink (detached by default).
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// The attached decision ledger, if any.
    pub fn ledger(&self) -> Option<&Arc<DecisionLedger>> {
        self.ledger.as_ref()
    }

    /// Is block preservation active?
    pub fn preserves_blocks(&self) -> bool {
        self.preserve_blocks
    }

    /// Key ranges that may have been lost to unrecoverable block
    /// corruption (empty on a healthy tree). Lookups inside these ranges
    /// may have returned [`LsmError::Degraded`]; everything outside them is
    /// unaffected.
    pub fn degraded_ranges(&self) -> Vec<(Key, Key)> {
        self.store.degraded_ranges()
    }

    // ------------------------------------------------------------------
    // Background-write-path primitives (memtable handoff)
    // ------------------------------------------------------------------

    /// The configured maintenance scheduler (see [`Scheduler`]). The tree
    /// itself never spawns threads; concurrent front-ends read this to
    /// decide whether to wrap the tree in a
    /// [`crate::scheduler::MergeScheduler`].
    pub fn scheduler_spec(&self) -> Scheduler {
        self.scheduler
    }

    /// The configured WAL commit discipline (see [`CommitMode`]).
    pub fn commit_mode(&self) -> CommitMode {
        self.commit
    }

    /// Whether the active memtable has reached L0 capacity (the overflow
    /// condition the inline cascade acts on).
    pub fn mem_at_capacity(&self) -> bool {
        self.mem.len() >= self.cfg.l0_capacity_records()
    }

    /// Seal the active memtable: swap in a fresh one and push the full one
    /// onto the immutable queue for a background flush. Emits
    /// [`Event::FlushEnqueued`]. Returns `false` (and seals nothing) when
    /// the active memtable is empty.
    pub fn seal_memtable(&mut self) -> bool {
        if self.mem.is_empty() {
            return false;
        }
        let sealed = std::mem::take(&mut self.mem);
        let records = sealed.len() as u64;
        self.imm.push_back(sealed);
        let backlog = self.imm.len();
        self.sink.emit_with(|| Event::FlushEnqueued { records, backlog });
        true
    }

    /// Sealed memtables awaiting a background flush.
    pub fn imm_count(&self) -> usize {
        self.imm.len()
    }

    /// Iterate the sealed memtables, oldest first (checkpointing folds
    /// them into the manifest; scans merge them with the active memtable).
    pub fn imm_memtables(&self) -> impl Iterator<Item = &Memtable> {
        self.imm.iter()
    }

    /// Whether any maintenance is pending: a sealed memtable to flush or
    /// an overflowing level to merge.
    pub fn maintenance_pending(&self) -> bool {
        if self.imm.iter().any(|m| !m.is_empty()) {
            return true;
        }
        let h = self.levels.len();
        (0..h).any(|i| self.levels[i].num_blocks() >= self.cfg.level_capacity_blocks(i + 1))
    }

    /// Run **one** bounded maintenance step: one policy-chosen merge out of
    /// the oldest sealed memtable if any, otherwise one merge (or level
    /// growth) for the shallowest overflowing level. Returns whether
    /// anything was done.
    ///
    /// This is the unit of work a background worker performs per lock
    /// acquisition — foreground writers interleave between steps, which is
    /// what bounds their tail latency (the inline cascade instead charges
    /// the whole cascade to the triggering request).
    pub fn maintenance_step(&mut self) -> Result<bool> {
        while self.imm.front().is_some_and(Memtable::is_empty) {
            self.imm.pop_front();
        }
        if !self.imm.is_empty() {
            // Each step is its own (short) cascade span, so merge spans
            // keep nesting under a cascade exactly as in inline mode.
            let _span = self.sink.span(SpanOp::cascade());
            self.merge_from_mem(MemSlot::ImmOldest)?;
            while self.imm.front().is_some_and(Memtable::is_empty) {
                self.imm.pop_front();
            }
            return Ok(true);
        }
        let h = self.levels.len();
        for vec_idx in 0..h {
            let paper = vec_idx + 1;
            if self.levels[vec_idx].num_blocks() >= self.cfg.level_capacity_blocks(paper) {
                let _span = self.sink.span(SpanOp::cascade());
                if vec_idx + 1 == h {
                    self.grow();
                } else {
                    self.merge_from_level(vec_idx)?;
                }
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Run maintenance steps until the tree is quiescent (no sealed
    /// memtables, no overflowing level). Used by clean shutdown and
    /// [`crate::WriteApi::flush`]; a no-op on an inline tree.
    pub fn drain_maintenance(&mut self) -> Result<()> {
        while self.maintenance_step()? {}
        Ok(())
    }

    // ------------------------------------------------------------------
    // Merge machinery
    // ------------------------------------------------------------------

    /// Run merges until no level overflows (§II-A).
    fn run_cascade(&mut self) -> Result<()> {
        // The cascade span opens lazily on the first action, so the common
        // no-op call (most requests trigger nothing) traces nothing.
        let mut cascade: Option<SpanGuard> = None;
        loop {
            if self.mem.len() >= self.cfg.l0_capacity_records() {
                cascade.get_or_insert_with(|| self.sink.span(SpanOp::cascade()));
                self.merge_from_mem(MemSlot::Active)?;
                continue;
            }
            let h = self.levels.len();
            let mut acted = false;
            for vec_idx in 0..h {
                let paper = vec_idx + 1;
                if self.levels[vec_idx].num_blocks() >= self.cfg.level_capacity_blocks(paper) {
                    cascade.get_or_insert_with(|| self.sink.span(SpanOp::cascade()));
                    if vec_idx + 1 == h {
                        self.grow();
                    } else {
                        self.merge_from_level(vec_idx)?;
                    }
                    acted = true;
                    break;
                }
            }
            if !acted {
                return Ok(());
            }
        }
    }

    /// The overflowing bottom level `L_{h-1}` becomes `L_h`; an empty
    /// level takes its place (§II-A).
    fn grow(&mut self) {
        let at = self.levels.len() - 1;
        self.levels.insert(at, Level::new());
        let new_height = self.height();
        self.sink.emit_with(|| Event::LevelAdded { new_height });
    }

    /// Blocks the policy's choice is expected to write: the selected source
    /// blocks plus every overlapping target block (none are preserved in
    /// the pessimistic prediction). Compared to the actual `writes` of the
    /// matching merge, this evaluates the policy's cost model.
    fn predicted_writes(
        runs: &[crate::memtable::RunMeta],
        target: &Level,
        choice: MergeChoice,
    ) -> u64 {
        match choice {
            MergeChoice::Full => (runs.len() + target.num_blocks()) as u64,
            MergeChoice::Window(w) => (w.len + window_overlap(runs, target.handles(), w)) as u64,
        }
    }

    /// Flush one policy-chosen unit (window or all) of a memtable into L1.
    /// `MemSlot::Active` is the inline path (the cascade flushes the live
    /// memtable in place); `MemSlot::ImmOldest` is the background path
    /// (a sealed memtable drains oldest-first so newest-wins shadowing
    /// across the queue is preserved). Event and span order is identical
    /// for both slots.
    fn merge_from_mem(&mut self, slot: MemSlot) -> Result<()> {
        let b = self.cfg.block_capacity();
        let runs = match slot {
            MemSlot::Active => self.mem.virtual_blocks(b),
            MemSlot::ImmOldest => match self.imm.front() {
                Some(m) => m.virtual_blocks(b),
                None => return Ok(()),
            },
        };
        if runs.is_empty() {
            return Ok(());
        }
        let ctx = MergeCtx {
            src_runs: &runs,
            target: &self.levels[0],
            window_blocks: self.cfg.merge_window_blocks(0),
            target_paper_level: 1,
            target_capacity: self.cfg.level_capacity_blocks(1),
            target_is_bottom: self.levels.len() == 1,
            src_rr_cursor: self.mem_rr_cursor,
        };
        let window_blocks = ctx.window_blocks;
        let choice = self.policy.choose(&ctx);
        let predicted = Self::predicted_writes(&runs, &self.levels[0], choice);
        // Covers record extraction and the L1 merge; the merge span in
        // `do_merge` nests underneath.
        let _flush_span = self.sink.span(SpanOp::flush(choice == MergeChoice::Full));
        self.sink.emit_with(|| Event::PolicyDecision {
            target_level: 1,
            full: choice == MergeChoice::Full,
            predicted_writes: predicted,
        });
        let ledger_token = self.ledger.as_ref().map(|l| {
            let cands = enumerate_candidates(&runs, self.levels[0].handles(), window_blocks);
            l.open(self.policy_name, 1, cands, choice, predicted)
        });
        let src_mem = match slot {
            MemSlot::Active => &mut self.mem,
            MemSlot::ImmOldest => self.imm.front_mut().expect("checked above"),
        };
        let (records, kind) = match choice {
            MergeChoice::Full => (src_mem.extract_all(), MergeKind::Full),
            MergeChoice::Window(w) => {
                (src_mem.extract_window(w.start, w.len, b), MergeKind::Partial)
            }
        };
        let src_records = records.len() as u64;
        self.sink.emit_with(|| Event::MemtableFlush {
            records: src_records,
            full: kind == MergeKind::Full,
        });
        self.do_merge(0, MergeSource::Records(records), src_records, kind, ledger_token)?;
        Ok(())
    }

    fn merge_from_level(&mut self, src_vec_idx: usize) -> Result<()> {
        debug_assert!(src_vec_idx + 1 < self.levels.len(), "bottom level never merges down");
        let src_paper = src_vec_idx + 1;
        let runs = runs_of_handles(self.levels[src_vec_idx].handles());
        if runs.is_empty() {
            return Ok(());
        }
        let ctx = MergeCtx {
            src_runs: &runs,
            target: &self.levels[src_vec_idx + 1],
            window_blocks: self.cfg.merge_window_blocks(src_paper),
            target_paper_level: src_paper + 1,
            target_capacity: self.cfg.level_capacity_blocks(src_paper + 1),
            target_is_bottom: src_vec_idx + 2 == self.levels.len(),
            src_rr_cursor: self.levels[src_vec_idx].rr_cursor,
        };
        let window_blocks = ctx.window_blocks;
        let choice = self.policy.choose(&ctx);
        let predicted = Self::predicted_writes(&runs, &self.levels[src_vec_idx + 1], choice);
        self.sink.emit_with(|| Event::PolicyDecision {
            target_level: src_paper + 1,
            full: choice == MergeChoice::Full,
            predicted_writes: predicted,
        });
        let ledger_token = self.ledger.as_ref().map(|l| {
            let cands =
                enumerate_candidates(&runs, self.levels[src_vec_idx + 1].handles(), window_blocks);
            l.open(self.policy_name, src_paper + 1, cands, choice, predicted)
        });
        let (range, kind) = match choice {
            MergeChoice::Full => (0..runs.len(), MergeKind::Full),
            MergeChoice::Window(w) => (w.start..w.start + w.len, MergeKind::Partial),
        };
        let range_start = range.start;
        let x = self.levels[src_vec_idx].remove_range(range);
        let src_records: u64 = x.iter().map(|h| u64::from(h.count)).sum();

        // Source-side waste maintenance (§II-B cases 1 & 2).
        let engine = MergeEngine::new(
            &self.store,
            self.cfg.block_capacity(),
            self.cfg.waste_eps,
            self.preserve_blocks,
        )
        .with_pairwise(self.enforce_pairwise);
        {
            // The seam fix is its own span (not part of the merge below), so
            // its writes never pollute merge-span attribution.
            let _span = self.sink.span(SpanOp::pairwise_fix(src_paper));
            let src_level = &mut self.levels[src_vec_idx];
            let mut w = src_level.waste_delta;
            let seam_fix = engine.fix_pair_if_needed(src_level, range_start, &mut w)?;
            src_level.waste_delta = w;
            if let Some(fix) = seam_fix {
                let ls = self.stats.level_mut(src_paper);
                ls.pairwise_fixes += 1;
                ls.blocks_written += fix.writes;
                ls.blocks_read += fix.reads;
                self.sink.emit_with(|| Event::PairwiseFix {
                    level: src_paper,
                    writes: fix.writes,
                    reads: fix.reads,
                });
            }
        }
        if self.enforce_level_waste && self.engine().needs_compaction(&self.levels[src_vec_idx]) {
            self.compact(src_vec_idx)?;
        }

        self.do_merge(src_vec_idx + 1, MergeSource::Blocks(x), src_records, kind, ledger_token)?;
        Ok(())
    }

    /// Merge `src` into `levels[target_vec_idx]` and do target-side
    /// maintenance, statistics, and events.
    fn do_merge(
        &mut self,
        target_vec_idx: usize,
        src: MergeSource,
        src_records: u64,
        kind: MergeKind,
        ledger_token: Option<u64>,
    ) -> Result<()> {
        let target_paper = target_vec_idx + 1;
        // Every device operation of `merge_into` — including in-merge
        // pairwise fixes, whose writes `MergeFinish` folds into `writes` —
        // lands inside this span; target-side compaction opens a child span
        // of its own, keeping merge-span attribution equal to
        // `MergeFinish::writes` exactly.
        let _merge_span = self.sink.span(SpanOp::merge(target_paper, kind == MergeKind::Full));
        self.sink.emit_with(|| Event::MergeStart {
            target_level: target_paper,
            full: kind == MergeKind::Full,
        });
        let engine = MergeEngine::new(
            &self.store,
            self.cfg.block_capacity(),
            self.cfg.waste_eps,
            self.preserve_blocks,
        )
        .with_pairwise(self.enforce_pairwise);
        let (target_slice, below) = self.levels[target_vec_idx..].split_at_mut(1);
        let target = &mut target_slice[0];
        let outcome = engine.merge_into(target, below, src)?;

        // Cursor of the *source* (one above the target).
        if target_vec_idx == 0 {
            self.mem_rr_cursor = Some(outcome.max_key);
        } else {
            self.levels[target_vec_idx - 1].rr_cursor = Some(outcome.max_key);
        }

        {
            let ls = self.stats.level_mut(target_paper);
            ls.merges_in += 1;
            ls.blocks_written += outcome.writes;
            ls.blocks_read += outcome.reads;
            ls.blocks_preserved += outcome.preserved;
            ls.records_in += src_records;
        }
        self.sink.emit_with(|| Event::MergeFinish {
            target_level: target_paper,
            full: kind == MergeKind::Full,
            src_records,
            writes: outcome.writes,
            reads: outcome.reads,
            preserved: outcome.preserved,
            max_key: outcome.max_key,
        });
        // Reconcile the ledger row with the same `writes` the MergeFinish
        // above reported, then surface the closed decision as an event.
        if let (Some(ledger), Some(token)) = (self.ledger.as_ref(), ledger_token) {
            if let Some(closed) = ledger.close(token, outcome.writes) {
                self.sink.emit_with(|| Event::LedgerOutcome {
                    target_level: closed.target_level,
                    full: closed.full,
                    candidates: closed.candidates,
                    predicted: closed.predicted,
                    best_predicted: closed.best_predicted,
                    actual: closed.actual,
                });
            }
        }

        // Target-side level-wise waste check (§II-B case 4).
        if self.enforce_level_waste && self.engine().needs_compaction(&self.levels[target_vec_idx])
        {
            self.compact(target_vec_idx)?;
        }
        Ok(())
    }

    fn compact(&mut self, vec_idx: usize) -> Result<()> {
        let paper = vec_idx + 1;
        let _span = self.sink.span(SpanOp::compaction(paper));
        let engine = MergeEngine::new(
            &self.store,
            self.cfg.block_capacity(),
            self.cfg.waste_eps,
            self.preserve_blocks,
        );
        let out = engine.compact_level(&mut self.levels[vec_idx])?;
        let ls = self.stats.level_mut(paper);
        ls.compactions += 1;
        ls.compaction_writes += out.writes;
        ls.blocks_written += out.writes;
        ls.blocks_read += out.reads;
        self.sink.emit_with(|| Event::Compaction { level: paper, writes: out.writes });
        Ok(())
    }

    fn engine(&self) -> MergeEngine<'_> {
        MergeEngine::new(
            &self.store,
            self.cfg.block_capacity(),
            self.cfg.waste_eps,
            self.preserve_blocks,
        )
        .with_pairwise(self.enforce_pairwise)
    }
}

impl crate::api::WriteApi for LsmTree {
    fn apply(&mut self, req: Request) -> Result<()> {
        LsmTree::apply(self, req)
    }

    fn flush(&mut self) -> Result<()> {
        self.drain_maintenance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MixedParams;

    fn tiny_cfg() -> LsmConfig {
        // 256-byte blocks, 4-byte payloads → record 17 B, B = 14.
        LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4, // L0 holds 56 records
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        }
    }

    fn tree_with(policy: PolicySpec) -> LsmTree {
        LsmTree::with_mem_device(tiny_cfg(), TreeOptions::builder().policy(policy).build(), 1 << 16)
            .unwrap()
    }

    fn payload(k: Key) -> Vec<u8> {
        vec![(k % 251) as u8; 4]
    }

    #[test]
    fn put_get_delete_before_any_merge() {
        let mut t = tree_with(PolicySpec::Full);
        t.put(10, payload(10)).unwrap();
        assert_eq!(t.get(10).unwrap().as_deref(), Some(&payload(10)[..]));
        t.delete(10).unwrap();
        assert_eq!(t.get(10).unwrap(), None);
        assert_eq!(t.get(999).unwrap(), None);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn memtable_overflow_triggers_merge_into_l1() {
        let mut t = tree_with(PolicySpec::Full);
        let cap = t.config().l0_capacity_records();
        for k in 0..cap as u64 {
            t.put(k * 7, payload(k)).unwrap();
        }
        assert!(t.memtable().len() < cap, "memtable must have spilled");
        assert!(t.levels()[0].num_blocks() > 0);
        assert!(t.stats().level(1).merges_in >= 1);
        assert!(t.stats().level(1).blocks_written >= 1);
        // All keys still visible.
        for k in 0..cap as u64 {
            assert_eq!(t.get(k * 7).unwrap().as_deref(), Some(&payload(k)[..]), "key {k}");
        }
    }

    fn fill(t: &mut LsmTree, n: u64, stride: u64) {
        for k in 0..n {
            t.put(k * stride, payload(k)).unwrap();
        }
    }

    #[test]
    fn tree_grows_levels_under_sustained_inserts() {
        for spec in [
            PolicySpec::Full,
            PolicySpec::RoundRobin,
            PolicySpec::ChooseBest,
            PolicySpec::TestMixed,
        ] {
            let mut t = tree_with(spec.clone());
            fill(&mut t, 4000, 13);
            assert!(t.height() >= 3, "{:?} should have grown: h={}", spec, t.height());
            // Spot-check lookups across levels.
            for k in [0u64, 13, 1300, 39 * 13, 3999 * 13] {
                assert!(t.get(k).unwrap().is_some(), "{spec:?} lost key {k}");
            }
            assert_eq!(t.get(5).unwrap(), None);
            // Structural invariants hold for every level.
            let b = t.config().block_capacity();
            for (i, lvl) in t.levels().iter().enumerate() {
                lvl.validate(b, t.config().waste_eps)
                    .unwrap_or_else(|e| panic!("{spec:?} L{}: {e}", i + 1));
            }
        }
    }

    #[test]
    fn deletes_flow_down_and_disappear() {
        let mut t = tree_with(PolicySpec::ChooseBest);
        fill(&mut t, 2000, 11);
        for k in 0..1000u64 {
            t.delete(k * 11).unwrap();
        }
        for k in 0..1000u64 {
            assert_eq!(t.get(k * 11).unwrap(), None, "key {k} must be deleted");
        }
        for k in 1000..2000u64 {
            assert!(t.get(k * 11).unwrap().is_some(), "key {k} must survive");
        }
        // The bottom level never stores tombstones.
        let bottom = t.levels().last().unwrap();
        for h in bottom.handles() {
            assert_eq!(h.tombstones, 0, "tombstone reached the bottom level");
        }
    }

    #[test]
    fn updates_replace_payloads() {
        let mut t = tree_with(PolicySpec::RoundRobin);
        fill(&mut t, 1500, 7);
        for k in 0..500u64 {
            t.put(k * 7, vec![0xEE; 4]).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(t.get(k * 7).unwrap().as_deref(), Some(&[0xEE; 4][..]));
        }
    }

    #[test]
    fn sink_receives_merge_events() {
        let sink = Arc::new(observe::VecSink::new());
        let mut t = LsmTree::with_mem_device(
            tiny_cfg(),
            TreeOptions::builder()
                .policy(PolicySpec::Full)
                .sink(SinkHandle::new(sink.clone()))
                .build(),
            1 << 16,
        )
        .unwrap();
        fill(&mut t, 500, 3);
        let events = sink.drain();
        assert!(events.iter().any(|e| matches!(e, Event::MergeFinish { target_level: 1, .. })));
        assert!(sink.is_empty(), "drained");

        t.set_sink(SinkHandle::none());
        fill(&mut t, 100, 3);
        assert!(sink.is_empty(), "detached sink receives nothing");
    }

    #[test]
    fn ledger_rows_reconcile_exactly_with_merge_finish_writes() {
        let sink = Arc::new(observe::VecSink::new());
        let ledger = Arc::new(DecisionLedger::new(4096));
        let mut t = LsmTree::with_mem_device(
            tiny_cfg(),
            TreeOptions::builder()
                .policy(PolicySpec::ChooseBest)
                .sink(SinkHandle::new(sink.clone()))
                .ledger(Arc::clone(&ledger))
                .build(),
            1 << 16,
        )
        .unwrap();
        fill(&mut t, 2000, 13);
        let rows = ledger.rows();
        assert!(!rows.is_empty(), "sustained inserts must have merged");
        let finishes: Vec<u64> = sink
            .drain()
            .iter()
            .filter_map(|e| match e {
                Event::MergeFinish { writes, .. } => Some(*writes),
                _ => None,
            })
            .collect();
        assert_eq!(rows.len(), finishes.len(), "one ledger row per MergeFinish");
        for (row, writes) in rows.iter().zip(&finishes) {
            assert_eq!(row.actual, Some(*writes), "row {} actual != MergeFinish writes", row.id);
        }
        assert_eq!(ledger.totals().closed, ledger.decisions(), "every decision reconciled");
        assert_eq!(
            ledger.cumulative_regret(),
            0,
            "ChooseBest picks the min-predicted candidate by construction"
        );
    }

    #[test]
    fn full_policy_accrues_regret_in_ledger() {
        let ledger = Arc::new(DecisionLedger::new(4096));
        let mut t = LsmTree::with_mem_device(
            tiny_cfg(),
            TreeOptions::builder().policy(PolicySpec::Full).ledger(Arc::clone(&ledger)).build(),
            1 << 16,
        )
        .unwrap();
        fill(&mut t, 3000, 7);
        let totals = ledger.totals();
        assert_eq!(totals.full_merges, totals.decisions, "Full policy only makes full merges");
        assert!(
            totals.regret > 0,
            "full merges over a populated target must beat some window somewhere"
        );
        // Detached trees never touch a ledger.
        let bare = tree_with(PolicySpec::Full);
        assert!(bare.ledger().is_none());
    }

    #[test]
    fn stats_track_requests() {
        let mut t = tree_with(PolicySpec::ChooseBest);
        t.put(1, payload(1)).unwrap();
        t.put(2, payload(2)).unwrap();
        t.delete(1).unwrap();
        t.get(2).unwrap();
        let s = t.stats();
        assert_eq!((s.puts, s.deletes, s.lookups()), (2, 1, 1));
        assert_eq!(s.total_requests(), 3);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut t = tree_with(PolicySpec::Full);
        let err = t.put(1, vec![0u8; 1000]).unwrap_err();
        assert!(matches!(err, LsmError::RecordTooLarge { .. }));
    }

    #[test]
    fn mismatched_device_block_size_rejected() {
        let dev = Arc::new(sim_ssd::MemDevice::with_block_size(16, 512));
        match LsmTree::new(tiny_cfg(), TreeOptions::default(), dev) {
            Err(LsmError::Config(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("mismatched block size must be rejected"),
        }
    }

    #[test]
    fn mixed_policy_runs_end_to_end() {
        let mut params = MixedParams { beta: true, default_tau: 0.4, ..MixedParams::default() };
        params.thresholds.insert(2, 0.5);
        let mut t = tree_with(PolicySpec::Mixed(params));
        fill(&mut t, 3000, 5);
        assert!(t.height() >= 3);
        for k in [0u64, 5, 500 * 5, 2999 * 5] {
            assert!(t.get(k).unwrap().is_some());
        }
    }

    #[test]
    fn policy_swap_preserves_data() {
        let mut t = tree_with(PolicySpec::Full);
        fill(&mut t, 1000, 9);
        t.set_policy(PolicySpec::ChooseBest.build());
        assert_eq!(t.policy_name(), "ChooseBest");
        fill(&mut t, 1000, 9); // overwrite same keys
        for k in (0..1000u64).step_by(97) {
            assert!(t.get(k * 9).unwrap().is_some());
        }
    }

    #[test]
    fn preserve_flag_changes_write_counts() {
        // Same workload with and without preservation: preserved blocks
        // can only reduce writes.
        let mut with = LsmTree::with_mem_device(
            tiny_cfg(),
            TreeOptions::builder().policy(PolicySpec::ChooseBest).preserve_blocks(true).build(),
            1 << 16,
        )
        .unwrap();
        let mut without = LsmTree::with_mem_device(
            tiny_cfg(),
            TreeOptions::builder().policy(PolicySpec::ChooseBest).preserve_blocks(false).build(),
            1 << 16,
        )
        .unwrap();
        fill(&mut with, 3000, 17);
        fill(&mut without, 3000, 17);
        let w_with = with.stats().total_blocks_written();
        let w_without = without.stats().total_blocks_written();
        assert!(
            w_with <= w_without,
            "preservation must not increase writes: {w_with} vs {w_without}"
        );
        assert!(with.stats().total_blocks_preserved() > 0, "some preservation expected");
    }

    #[test]
    fn record_count_and_bytes() {
        let mut t = tree_with(PolicySpec::Full);
        fill(&mut t, 100, 2);
        assert!(t.record_count() >= 100);
        assert_eq!(t.approx_bytes(), t.record_count() * 17);
    }
}
