//! Debug-build lock-order assertions for the concurrent write path.
//!
//! The scheduler's whole deadlock-freedom argument is one rule: **never
//! hold a tree (shard) lock and the scheduler state lock at the same
//! time** (see [`crate::scheduler`] module docs). The rule is easy to
//! state and easy to break silently — a refactor that calls
//! [`MergeScheduler::notify`](crate::MergeScheduler) from inside a shard
//! critical section compiles fine and deadlocks only under load. This
//! module makes the rule executable: the front-ends mark their tree-lock
//! critical sections with a [`TreeLockGuard`], and the scheduler calls
//! [`assert_no_tree_lock`] before taking its state lock. In debug builds a
//! violation panics at the offending call site; in release builds
//! everything compiles to nothing.

#[cfg(debug_assertions)]
use std::cell::Cell;

#[cfg(debug_assertions)]
thread_local! {
    /// Tree-lock depth of the current thread (re-entrant sections nest).
    static TREE_LOCK_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII marker for "this thread is inside a tree-lock critical section".
/// Acquire with [`tree_lock_held`] right after taking a shard's lock and
/// keep it alive for exactly as long as the lock guard.
#[derive(Debug)]
#[must_use = "the marker must live as long as the tree lock guard"]
pub struct TreeLockGuard {
    _private: (),
}

/// Mark the current thread as holding a tree lock until the returned
/// guard drops.
pub fn tree_lock_held() -> TreeLockGuard {
    #[cfg(debug_assertions)]
    TREE_LOCK_DEPTH.with(|d| d.set(d.get() + 1));
    TreeLockGuard { _private: () }
}

impl Drop for TreeLockGuard {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        TREE_LOCK_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Panic (debug builds only) if the current thread holds a tree lock.
/// Called by the scheduler immediately before it takes its state lock.
#[inline]
pub fn assert_no_tree_lock(context: &str) {
    #[cfg(debug_assertions)]
    TREE_LOCK_DEPTH.with(|d| {
        assert!(
            d.get() == 0,
            "lock-order violation: {context} while holding a tree lock \
             (depth {}) — tree locks and scheduler state locks must never \
             be held together",
            d.get()
        );
    });
    #[cfg(not(debug_assertions))]
    let _ = context;
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn no_lock_means_no_panic() {
        assert_no_tree_lock("unit test");
        let g = tree_lock_held();
        drop(g);
        assert_no_tree_lock("after drop");
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn violation_panics_in_debug() {
        let _g = tree_lock_held();
        assert_no_tree_lock("unit test violation");
    }

    #[test]
    fn nesting_tracks_depth() {
        let a = tree_lock_held();
        let b = tree_lock_held();
        drop(b);
        // Still held: dropping the inner marker must not clear the outer.
        let caught = std::panic::catch_unwind(|| assert_no_tree_lock("nested"));
        assert!(caught.is_err(), "outer tree lock must still be visible");
        drop(a);
        assert_no_tree_lock("all dropped");
    }
}
