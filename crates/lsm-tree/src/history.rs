//! Durability history checking for the concurrent write path.
//!
//! The crash-torture harness for the single-writer tree checks "the
//! recovered state is some prefix of the requests". With concurrent
//! writers and group commit the statement needs sharpening: each write has
//! an *invocation* (the WAL append, under the shard lock — which fixes the
//! per-shard order) and an *acknowledgement* (the fsync covering it
//! completed: inline for [`CommitMode::PerRequest`](crate::CommitMode), at
//! the group-commit rendezvous for [`CommitMode::Group`](crate::CommitMode)).
//! A crash may land between the two. The checkable contract is **prefix
//! durability per shard**:
//!
//! 1. the recovered shard equals the replay of some prefix `P` of the
//!    shard's invocation-ordered history, and
//! 2. `P` covers every *acknowledged* write — an acked write may only be
//!    invisible if a later write in `P` superseded it, never because it
//!    was lost;
//! 3. unacknowledged ([`AckStatus::Pending`] / [`AckStatus::Failed`])
//!    writes may appear, but only as members of that same prefix — a
//!    group-commit cohort becomes durable (or not) in append order, so a
//!    pending write can never be visible while an *earlier* write of the
//!    same shard is lost.
//!
//! [`HistoryChecker::check`] verifies all three with one incremental
//! diff-walk over the history (O(history + state), the same technique as
//! [`crate::torture`]'s single-writer prefix check). The negative-test
//! hook in the torture harness flips Group acks to "acked at append" —
//! an ack-before-fsync bug — and this checker is what must catch it.

use std::collections::HashMap;
use std::fmt;

use crate::record::Key;

/// Where a recorded write stands in the invocation→acknowledgement
/// lifecycle at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// The writer was told the write is durable (fsync covering it
    /// succeeded). Losing it after a crash is a durability violation.
    Acked,
    /// Invoked but not yet acknowledged (e.g. waiting on a group-commit
    /// fsync). May or may not survive a crash.
    Pending,
    /// The write errored back to the writer (injected fault, poisoned
    /// WAL). Like `Pending`, it may still be partially durable — the
    /// append may have reached the log even though the fsync failed.
    Failed,
}

/// One write in a shard's invocation-ordered history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRecord {
    /// The logical writer that issued the request.
    pub writer: usize,
    /// The key written.
    pub key: Key,
    /// `Some(payload)` for a put, `None` for a delete.
    pub value: Option<Vec<u8>>,
    /// Ack state at crash time.
    pub status: AckStatus,
}

/// A sample mismatched key: `(key, predicted payload, recovered payload)`
/// — `None` meaning absent on either side.
pub type MismatchSample = (Key, Option<Vec<u8>>, Option<Vec<u8>>);

/// A prefix-durability violation: no history prefix both matches the
/// recovered state and covers every acknowledged write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryViolation {
    /// Records that must be in any acceptable prefix (index of the last
    /// acked record + 1).
    pub required_floor: usize,
    /// Total records in the history.
    pub history_len: usize,
    /// The closest the walk got: `(prefix, mismatched_keys)` with the
    /// fewest mismatches among prefixes at or beyond the floor.
    pub best: (usize, usize),
    /// A sample mismatched key at the best prefix, with what the history
    /// predicts and what recovery produced.
    pub sample: Option<MismatchSample>,
}

impl fmt::Display for HistoryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no durable prefix: floor {} of {} records, best prefix {} still \
             mismatches {} key(s)",
            self.required_floor, self.history_len, self.best.0, self.best.1
        )?;
        if let Some((key, want, got)) = &self.sample {
            write!(f, "; e.g. key {key}: history predicts {want:?}, recovered {got:?}")?;
        }
        Ok(())
    }
}

/// Invocation-ordered history of one shard's writes, with the prefix
/// durability check. Records are appended in WAL-append order (the shard
/// lock already serializes that order for the recorder).
#[derive(Debug, Default, Clone)]
pub struct HistoryChecker {
    records: Vec<HistoryRecord>,
}

impl HistoryChecker {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, returning its index (used to update the status
    /// once the ack outcome is known).
    pub fn append(&mut self, record: HistoryRecord) -> usize {
        self.records.push(record);
        self.records.len() - 1
    }

    /// Update a record's ack status (e.g. Pending → Acked when the
    /// group-commit fsync covering it completes).
    pub fn set_status(&mut self, index: usize, status: AckStatus) {
        self.records[index].status = status;
    }

    /// Records appended so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in invocation order.
    pub fn records(&self) -> &[HistoryRecord] {
        &self.records
    }

    /// Index of the last acknowledged record plus one: the smallest
    /// prefix any recovered state may legally correspond to.
    pub fn required_floor(&self) -> usize {
        self.records.iter().rposition(|r| r.status == AckStatus::Acked).map_or(0, |i| i + 1)
    }

    /// Check `recovered` (the shard's live key→payload map after
    /// recovery) against the history. Returns the shortest matching
    /// prefix length on success.
    pub fn check(
        &self,
        recovered: &HashMap<Key, Vec<u8>>,
    ) -> std::result::Result<usize, Box<HistoryViolation>> {
        let floor = self.required_floor();
        // model: key → visible payload predicted by the prefix walked so
        // far (None = deleted). Missing = never touched, predicted absent.
        let mut model: HashMap<Key, Option<Vec<u8>>> = HashMap::new();
        // Every key recovery reports starts mismatched against the empty
        // model; keys recovery invented (never in the history) can then
        // never match, which is exactly right.
        let mut diff = recovered.len();
        let mut best = (0usize, diff);
        if floor == 0 && diff == 0 {
            return Ok(0);
        }
        for (p, rec) in self.records.iter().enumerate() {
            let recovered_v = recovered.get(&rec.key);
            let old_matches =
                model.get(&rec.key).map_or(recovered_v.is_none(), |m| m.as_ref() == recovered_v);
            let new_matches = rec.value.as_ref() == recovered_v;
            match (old_matches, new_matches) {
                (true, false) => diff += 1,
                (false, true) => diff -= 1,
                _ => {}
            }
            model.insert(rec.key, rec.value.clone());
            let prefix = p + 1;
            if prefix >= floor {
                if diff == 0 {
                    return Ok(prefix);
                }
                if diff < best.1 || best.0 < floor {
                    best = (prefix, diff);
                }
            }
        }
        // No prefix matched: report the closest miss with a sample key —
        // the smallest mismatched key, so the message is deterministic
        // (HashMap iteration order must not leak into seeded replays).
        let sample = recovered
            .iter()
            .filter(|(k, v)| model.get(*k).is_none_or(|m| m.as_deref() != Some(v.as_slice())))
            .map(|(k, v)| (*k, model.get(k).cloned().flatten(), Some(v.clone())))
            .chain(model.iter().filter_map(|(k, m)| match (m, recovered.get(k)) {
                (Some(want), None) => Some((*k, Some(want.clone()), None)),
                _ => None,
            }))
            .min_by_key(|(k, _, _)| *k);
        Err(Box::new(HistoryViolation {
            required_floor: floor,
            history_len: self.records.len(),
            best,
            sample,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(writer: usize, key: Key, v: u8, status: AckStatus) -> HistoryRecord {
        HistoryRecord { writer, key, value: Some(vec![v; 4]), status }
    }

    fn del(writer: usize, key: Key, status: AckStatus) -> HistoryRecord {
        HistoryRecord { writer, key, value: None, status }
    }

    fn state(pairs: &[(Key, u8)]) -> HashMap<Key, Vec<u8>> {
        pairs.iter().map(|&(k, v)| (k, vec![v; 4])).collect()
    }

    #[test]
    fn full_history_durable() {
        let mut h = HistoryChecker::new();
        h.append(put(0, 1, 10, AckStatus::Acked));
        h.append(put(1, 2, 20, AckStatus::Acked));
        h.append(del(0, 1, AckStatus::Acked));
        assert_eq!(h.check(&state(&[(2, 20)])), Ok(3));
    }

    #[test]
    fn pending_tail_may_be_lost() {
        let mut h = HistoryChecker::new();
        h.append(put(0, 1, 10, AckStatus::Acked));
        h.append(put(1, 2, 20, AckStatus::Pending));
        h.append(put(0, 3, 30, AckStatus::Failed));
        // Any prefix ≥ 1 is legal: lost tail…
        assert_eq!(h.check(&state(&[(1, 10)])), Ok(1));
        // …partially durable tail…
        assert_eq!(h.check(&state(&[(1, 10), (2, 20)])), Ok(2));
        // …or fully durable tail (failed append still hit the log).
        assert_eq!(h.check(&state(&[(1, 10), (2, 20), (3, 30)])), Ok(3));
    }

    #[test]
    fn lost_acked_write_is_a_violation() {
        let mut h = HistoryChecker::new();
        h.append(put(0, 1, 10, AckStatus::Acked));
        h.append(put(1, 2, 20, AckStatus::Acked));
        let err = h.check(&state(&[(1, 10)])).unwrap_err();
        assert_eq!(err.required_floor, 2);
        assert!(err.to_string().contains("no durable prefix"), "{err}");
    }

    #[test]
    fn superseded_acked_write_is_fine() {
        let mut h = HistoryChecker::new();
        h.append(put(0, 1, 10, AckStatus::Acked));
        h.append(put(1, 1, 11, AckStatus::Acked));
        assert_eq!(h.check(&state(&[(1, 11)])), Ok(2));
        // But recovering the *old* value while the new one was acked is a
        // violation — the prefix rule sees through overwrites.
        assert!(h.check(&state(&[(1, 10)])).is_err());
    }

    #[test]
    fn out_of_order_durability_is_a_violation() {
        // A pending write surviving while an EARLIER write of the same
        // shard is lost breaks the prefix (WAL replay stops at the first
        // torn frame, so this catches cohort-ordering bugs).
        let mut h = HistoryChecker::new();
        h.append(put(0, 1, 10, AckStatus::Pending));
        h.append(put(1, 2, 20, AckStatus::Pending));
        assert!(h.check(&state(&[(2, 20)])).is_err());
    }

    #[test]
    fn phantom_keys_are_a_violation() {
        let mut h = HistoryChecker::new();
        h.append(put(0, 1, 10, AckStatus::Acked));
        let err = h.check(&state(&[(1, 10), (99, 9)])).unwrap_err();
        assert!(err.sample.is_some());
    }

    #[test]
    fn empty_history_matches_empty_state_only() {
        let h = HistoryChecker::new();
        assert_eq!(h.check(&HashMap::new()), Ok(0));
        assert!(h.check(&state(&[(1, 1)])).is_err());
    }
}
