//! Seeded crash-torture cycles: randomized workload, power cut at a random
//! device-op count, recovery, and a durability-invariant check.
//!
//! One [`run_crash_cycle`] does, deterministically per seed:
//!
//! 1. Build a [`crate::DurableLsmTree`] over a [`sim_ssd::FaultDevice`]
//!    wrapping an in-memory device, with low transient read/write error
//!    rates (absorbed by the store's retries) and a scheduled power cut at
//!    a random device-op count — so the cut lands anywhere, including the
//!    middle of a merge cascade or a checkpoint.
//! 2. Run a random put/delete workload, fsyncing the WAL every few requests
//!    and checkpointing occasionally, until the power cut surfaces (or the
//!    workload ends, in which case the cut is forced).
//! 3. Simulate the host dying at the same instant: the tree object is
//!    leaked (no destructor, no final WAL flush) and the WAL file is
//!    truncated to its last-fsynced length plus a random portion of the
//!    flushed-but-unsynced tail — what a real page cache can leave behind.
//! 4. Recover from the durable image (the fault decorator's inner device —
//!    exactly the frames that were synced) and check the **durability
//!    invariant**: the recovered state must equal the state after some
//!    prefix `P` of the issued requests with `P ≥` the last fsync point.
//!    Nothing durable may be lost, nothing may be resurrected, and no
//!    "state" that never existed may appear.
//! 5. Apply a continuation workload to the recovered tree, then run the
//!    deep structural verifier ([`crate::verify::check_tree`]).
//!
//! The harness is pure `f(seed)`: the same seed produces the same workload,
//! the same fault sequence, and the same verdict, which is what lets a
//! failing seed from the torture suite be replayed under a debugger.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use observe::{FlightRecorderSink, Json, SinkHandle, TickClock, TraceSink, Tracer};
use sim_ssd::{BlockDevice, FaultDevice, FaultPlan, MemDevice, SplitMix64};

use crate::config::LsmConfig;
use crate::policy::ledger::DecisionLedger;
use crate::policy::PolicySpec;
use crate::postmortem::PostMortem;
use crate::record::Request;
use crate::store::RetryPolicy;
use crate::tree::TreeOptions;
use crate::wal::DurableLsmTree;

/// Which device the crash cycle's [`FaultDevice`] wraps. The durable
/// image recovered from is the inner device either way; the file backend
/// runs the identical cycle through real file I/O (and its batched
/// read/write paths) in a temp file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TortureBackend {
    /// In-memory simulated SSD (default: fastest, wear-instrumented).
    #[default]
    Mem,
    /// File-backed device in a per-seed temp file.
    File,
}

/// Knobs of one crash-torture cycle. [`TortureConfig::for_seed`] gives the
/// standard smoke configuration.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Seed for the workload and the fault plan.
    pub seed: u64,
    /// Device backend under the fault decorator.
    pub backend: TortureBackend,
    /// Maximum requests to issue before the power cut is forced.
    pub ops: u64,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Fsync the WAL every this many requests.
    pub sync_every: u64,
    /// Checkpoint (manifest + WAL truncation) every this many requests.
    pub checkpoint_every: u64,
    /// Per-read transient error probability (retries absorb these).
    pub read_error_rate: f64,
    /// Per-write transient error probability (retries absorb these).
    pub write_error_rate: f64,
    /// Requests applied to the recovered tree before the final deep check.
    pub continue_ops: u64,
    /// Where to write a post-mortem bundle when a cycle fails (or on
    /// success too, with [`TortureConfig::always_dump`]). `None` (the
    /// default) disables bundling entirely.
    pub bundle_dir: Option<PathBuf>,
    /// Dump a bundle even when the cycle passes — used by the determinism
    /// suite and by `lsm_crash --always-dump` for smoke checks.
    pub always_dump: bool,
}

impl TortureConfig {
    /// The standard cycle for `seed`: 400 requests max, 512-key space,
    /// fsync every 9, checkpoint every 140, 1% transient error rates.
    pub fn for_seed(seed: u64) -> Self {
        TortureConfig {
            seed,
            backend: TortureBackend::Mem,
            ops: 400,
            key_space: 512,
            sync_every: 9,
            checkpoint_every: 140,
            read_error_rate: 0.01,
            write_error_rate: 0.01,
            continue_ops: 60,
            bundle_dir: None,
            always_dump: false,
        }
    }
}

/// The bundle file a failing (or `always_dump`) cycle for `seed` writes
/// under `dir` — named after the seed so "FAIL (seed N)" output and the
/// file on disk can be matched by eye, and deliberately free of process
/// ids so same-seed bundles are byte-comparable.
pub fn bundle_path(dir: &Path, seed: u64) -> PathBuf {
    dir.join(format!("lsm_crash_seed_{seed}.postmortem.json"))
}

/// Why a torture cycle failed: the violated invariant (or failed step),
/// the seed to replay it, and the post-mortem bundle if one was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TortureFailure {
    /// The seed that produced the failing cycle.
    pub seed: u64,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Path of the post-mortem bundle, when `bundle_dir` was set and the
    /// dump succeeded.
    pub bundle: Option<PathBuf>,
}

impl std::fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[seed {}] {}", self.seed, self.message)?;
        if let Some(path) = &self.bundle {
            write!(f, " (post-mortem: {})", path.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for TortureFailure {}

/// What one crash cycle did — for aggregation and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TortureReport {
    /// The seed that produced this cycle.
    pub seed: u64,
    /// Requests issued before the crash (including the one that failed).
    pub issued: u64,
    /// The device-op count the power cut fired at.
    pub cut_device_op: u64,
    /// Whether the scheduled cut fired mid-workload (vs forced at the end).
    pub cut_mid_workload: bool,
    /// Requests known durable at the crash (last successful fsync point).
    pub durable_floor: u64,
    /// The request prefix the recovered state matched.
    pub matched_prefix: u64,
    /// Live keys in the recovered tree.
    pub recovered_keys: u64,
    /// Requests replayed from the WAL during recovery.
    pub replayed: u64,
}

fn tiny_cfg() -> LsmConfig {
    LsmConfig {
        block_size: 256,
        payload_size: 4,
        k0_blocks: 4,
        gamma: 4,
        cache_blocks: 16,
        merge_rate: 0.25,
        ..LsmConfig::default()
    }
}

fn temp_paths(seed: u64) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    (
        dir.join(format!("lsm-torture-{pid}-{seed}.manifest")),
        dir.join(format!("lsm-torture-{pid}-{seed}.wal")),
        dir.join(format!("lsm-torture-{pid}-{seed}.dev")),
    )
}

/// One logged request: key plus `Some(payload)` for a put, `None` for a
/// delete. The workload keeps this log so the durability check can replay
/// every possible crash prefix.
type LoggedOp = (u64, Option<Vec<u8>>);

fn draw_op(rng: &mut SplitMix64, key_space: u64) -> LoggedOp {
    let key = rng.gen_range(key_space);
    if rng.chance(0.7) {
        let fill = (rng.gen_range(251)) as u8;
        (key, Some(vec![fill; 4]))
    } else {
        (key, None)
    }
}

fn to_request(op: &LoggedOp) -> Request {
    match &op.1 {
        Some(payload) => Request::Put(op.0, Bytes::from(payload.clone())),
        None => Request::Delete(op.0),
    }
}

/// Run one seeded crash cycle; `Err` carries the violated invariant, the
/// seed for replay, and (when [`TortureConfig::bundle_dir`] is set) the
/// path of the post-mortem bundle the failure wrote.
///
/// Every cycle runs with a black box attached: a deterministic
/// [`Tracer`] ([`TickClock`]) feeding a [`FlightRecorderSink`], plus a
/// [`DecisionLedger`] on the tree. On failure — or on success with
/// [`TortureConfig::always_dump`] — their contents are serialized into a
/// bundle at [`bundle_path`]. Bundles are deterministic: two runs of the
/// same seed produce byte-identical files.
pub fn run_crash_cycle(cfg: &TortureConfig) -> Result<TortureReport, TortureFailure> {
    let (man_path, wal_path, dev_path) = temp_paths(cfg.seed);
    let cleanup = || {
        std::fs::remove_file(&man_path).ok();
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&dev_path).ok();
    };
    cleanup();

    let mut rng = SplitMix64::new(cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    // The wear section of a post-mortem bundle is MemDevice-only; the
    // trait-object handle drives everything else.
    let mut mem_for_wear: Option<Arc<MemDevice>> = None;
    let inner: Arc<dyn BlockDevice> = match cfg.backend {
        TortureBackend::Mem => {
            let mem = Arc::new(MemDevice::with_block_size(1 << 14, 256));
            mem_for_wear = Some(Arc::clone(&mem));
            mem
        }
        TortureBackend::File => {
            Arc::new(sim_ssd::FileDevice::create_with_block_size(&dev_path, 1 << 14, 256).map_err(
                |e| TortureFailure {
                    seed: cfg.seed,
                    message: format!("file device create failed: {e}"),
                    bundle: None,
                },
            )?)
        }
    };
    let fault = Arc::new(FaultDevice::new(Arc::clone(&inner), cfg.seed));

    // The black box: deterministic tracer → flight recorder, and a
    // decision ledger on the tree. Sinks cannot perturb the cycle (the
    // observer-effect contract), and TickClock keeps the bundle free of
    // wall-clock time, so determinism per seed is preserved.
    let recorder = Arc::new(FlightRecorderSink::new(512));
    let ledger = Arc::new(DecisionLedger::new(256));
    let sink = SinkHandle::of(
        Tracer::with_clock(Arc::new(TickClock::new()))
            .trace_to(Arc::clone(&recorder) as Arc<dyn TraceSink>),
    );

    // Writes a bundle if a directory is configured; returns its path.
    let dump = |reason: &str, error: Option<&str>, tree_json: Option<Json>| -> Option<PathBuf> {
        let dir = cfg.bundle_dir.as_deref()?;
        let path = bundle_path(dir, cfg.seed);
        let mut pm = PostMortem::new(reason)
            .seed(cfg.seed)
            .repro(&format!(
                "cargo run --release -p lsm-bench --bin lsm_crash -- --seeds=1 --seed-base={}",
                cfg.seed
            ))
            .flight(&recorder)
            .ledger(&ledger)
            .device_io(inner.io_snapshot());
        if let Some(mem) = &mem_for_wear {
            pm = pm.wear(&mem.wear_snapshot(), 32);
        }
        if let Some(msg) = error {
            pm = pm.error(msg);
        }
        if let Some(tree) = tree_json {
            pm = pm.section("tree", tree);
        }
        pm.write_to(&path).ok()?;
        Some(path)
    };
    let fail = |msg: String, bundle: Option<PathBuf>| TortureFailure {
        seed: cfg.seed,
        message: msg,
        bundle,
    };

    let opts = TreeOptions::builder()
        .policy(PolicySpec::ChooseBest)
        .retry(RetryPolicy { max_attempts: 4, base_backoff_us: 0 })
        .sink(sink)
        .ledger(Arc::clone(&ledger))
        .build();
    let mut tree = DurableLsmTree::create(
        tiny_cfg(),
        opts.clone(),
        Arc::clone(&fault) as Arc<dyn BlockDevice>,
        &man_path,
        &wal_path,
    )
    .map_err(|e| {
        let msg = format!("create failed: {e}");
        let bundle = dump("torture failure: create", Some(&msg), None);
        fail(msg, bundle)
    })?;

    // Schedule the cut only now, so creation itself cannot be cut: an
    // index that never existed has no durability contract to check. The
    // cut lands at a uniformly random *device* op, so it can interrupt a
    // merge cascade between any two block writes. The cache absorbs most
    // reads, so a workload of N requests issues roughly N/3 device ops;
    // sizing the window to that keeps most cuts inside the workload while
    // still leaving some to fire at (or after) the forced end-of-run cut.
    let cut_window = cfg.ops / 3 + 1;
    let cut_at = fault.ops_issued() + 1 + rng.gen_range(cut_window);
    fault.set_plan(
        FaultPlan::none()
            .read_error_rate(cfg.read_error_rate)
            .write_error_rate(cfg.write_error_rate)
            .power_cut_at(cut_at),
    );

    // ------------------------------------------------------------------
    // Phase 1: workload until the crash.
    // ------------------------------------------------------------------
    let mut log: Vec<LoggedOp> = Vec::with_capacity(cfg.ops as usize);
    let mut durable_floor: u64 = 0; // requests covered by the last fsync
    let mut cut_mid_workload = false;

    for i in 0..cfg.ops {
        let op = draw_op(&mut rng, cfg.key_space);
        // The request is logged before apply: WAL-first ordering means a
        // request whose apply fails may still have reached the (synced or
        // unsynced) log, so the durability window must include it.
        log.push(op);
        let req = to_request(log.last().expect("just pushed"));
        if tree.apply(req).is_err() {
            cut_mid_workload = true;
            break;
        }
        let issued = i + 1;
        if issued % cfg.sync_every == 0 {
            if tree.sync().is_err() {
                cut_mid_workload = true;
                break;
            }
            durable_floor = issued;
        }
        if issued % cfg.checkpoint_every == 0 {
            if tree.checkpoint().is_err() {
                cut_mid_workload = true;
                break;
            }
            durable_floor = issued;
        }
    }
    let issued = log.len() as u64;
    if !cut_mid_workload {
        fault.power_cut();
    }
    let cut_device_op = fault.ops_issued();

    // ------------------------------------------------------------------
    // Phase 2: the host dies with the device. Leak the tree (no Drop, no
    // final WAL flush), then throw away a random portion of the WAL's
    // flushed-but-unsynced tail.
    // ------------------------------------------------------------------
    let wal_synced = tree.wal_synced_len();
    // The tree is about to be leaked to simulate the host dying; snapshot
    // its state first so bundles from later phases can still say what the
    // pre-crash tree looked like.
    let pre_crash_tree = cfg.bundle_dir.is_some().then(|| PostMortem::tree_json(tree.tree()));
    std::mem::forget(tree);
    let on_disk = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
    let tail = on_disk.saturating_sub(wal_synced);
    let keep = wal_synced + if tail > 0 { rng.gen_range(tail + 1) } else { 0 };
    if keep < on_disk {
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).map_err(|e| {
            let msg = format!("wal truncate open failed: {e}");
            let bundle = dump("torture failure: wal truncate", Some(&msg), pre_crash_tree.clone());
            fail(msg, bundle)
        })?;
        f.set_len(keep).map_err(|e| {
            let msg = format!("wal truncate failed: {e}");
            let bundle = dump("torture failure: wal truncate", Some(&msg), pre_crash_tree.clone());
            fail(msg, bundle)
        })?;
    }

    // ------------------------------------------------------------------
    // Phase 3: recover from the durable image. The fault decorator's inner
    // device holds exactly the frames that were synced before the cut.
    // ------------------------------------------------------------------
    let mut recovered = DurableLsmTree::recover(opts, fault.inner(), &man_path, &wal_path)
        .map_err(|e| {
            let msg = format!("recovery failed: {e}");
            let bundle = dump("torture failure: recovery", Some(&msg), pre_crash_tree.clone());
            cleanup();
            fail(msg, bundle)
        })?;
    let replayed = recovered.wal_backlog();

    // ------------------------------------------------------------------
    // Phase 4: the durability invariant. Walk the request log once,
    // maintaining the model state and a running count of keys where the
    // model differs from the recovered tree; any prefix P ≥ durable_floor
    // with zero differences satisfies the contract.
    // ------------------------------------------------------------------
    let recovered_map: BTreeMap<u64, Bytes> =
        recovered.tree().scan(0, u64::MAX).collect::<crate::error::Result<_>>().map_err(|e| {
            let msg = format!("scan of recovered tree failed: {e}");
            let bundle = dump(
                "torture failure: recovered scan",
                Some(&msg),
                Some(PostMortem::tree_json(recovered.tree())),
            );
            cleanup();
            fail(msg, bundle)
        })?;
    let recovered_keys = recovered_map.len() as u64;

    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut diff = recovered_map.len() as i64; // empty model vs recovered
    let mut matched: Option<u64> = if durable_floor == 0 && diff == 0 { Some(0) } else { None };
    for (j, (key, value)) in log.iter().enumerate() {
        let rec = recovered_map.get(key).map(|b| &b[..]);
        let old_matches = model.get(key).map(|v| &v[..]) == rec;
        match value {
            Some(v) => {
                let new_matches = rec == Some(&v[..]);
                model.insert(*key, v.clone());
                diff += i64::from(old_matches) - i64::from(new_matches);
            }
            None => {
                let new_matches = rec.is_none();
                model.remove(key);
                diff += i64::from(old_matches) - i64::from(new_matches);
            }
        }
        let p = j as u64 + 1;
        if matched.is_none() && p >= durable_floor && diff == 0 {
            matched = Some(p);
        }
    }
    let Some(matched_prefix) = matched else {
        let msg = format!(
            "recovered state matches no request prefix in [{durable_floor}, {issued}] \
             (issued {issued}, replayed {replayed}, {recovered_keys} live keys)"
        );
        let bundle = dump(
            "torture failure: durability invariant",
            Some(&msg),
            Some(PostMortem::tree_json(recovered.tree())),
        );
        cleanup();
        return Err(fail(msg, bundle));
    };

    // ------------------------------------------------------------------
    // Phase 5: life goes on — the recovered tree must take new writes and
    // pass the deep structural check.
    // ------------------------------------------------------------------
    for i in 0..cfg.continue_ops {
        let op = draw_op(&mut rng, cfg.key_space);
        recovered.apply(to_request(&op)).map_err(|e| {
            let msg = format!("continuation op {i} failed: {e}");
            let bundle = dump(
                "torture failure: continuation",
                Some(&msg),
                Some(PostMortem::tree_json(recovered.tree())),
            );
            cleanup();
            fail(msg, bundle)
        })?;
    }
    recovered.checkpoint().map_err(|e| {
        let msg = format!("post-recovery checkpoint failed: {e}");
        let bundle = dump(
            "torture failure: checkpoint",
            Some(&msg),
            Some(PostMortem::tree_json(recovered.tree())),
        );
        cleanup();
        fail(msg, bundle)
    })?;
    crate::verify::check_tree(recovered.tree(), true).map_err(|e| {
        let msg = format!("deep check after recovery failed: {e}");
        let bundle = dump(
            "torture failure: deep check",
            Some(&msg),
            Some(PostMortem::tree_json(recovered.tree())),
        );
        cleanup();
        fail(msg, bundle)
    })?;

    if cfg.always_dump {
        dump("explicit dump", None, Some(PostMortem::tree_json(recovered.tree())));
    }
    drop(recovered);
    cleanup();
    Ok(TortureReport {
        seed: cfg.seed,
        issued,
        cut_device_op,
        cut_mid_workload,
        durable_floor,
        matched_prefix,
        recovered_keys,
        replayed,
    })
}

// ======================================================================
// Concurrent torture: M writers + simulated scheduler + faults under
// concurrency + the durability/history checker.
// ======================================================================

/// Knobs of one *concurrent* crash-torture cycle over a
/// [`ShardedLsmTree`](crate::ShardedLsmTree) driven by a
/// [`SimExecutor`](crate::SimExecutor).
/// [`ConcurrentTortureConfig::for_seed`] is the standard smoke shape.
#[derive(Debug, Clone)]
pub struct ConcurrentTortureConfig {
    /// Seed for everything: writer workloads, interleaving choices, fault
    /// plans, the crash point.
    pub seed: u64,
    /// Logical writers (each with its own seeded op stream).
    pub writers: usize,
    /// Shards of the tree under test.
    pub shards: usize,
    /// Writer requests to issue before the power cut is forced.
    pub ops: u64,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Per-read transient device error probability (retries absorb these).
    pub read_error_rate: f64,
    /// Per-write transient device error probability.
    pub write_error_rate: f64,
    /// Per-fsync WAL failure probability (these poison — see
    /// [`crate::WalFaultPlan`]).
    pub wal_sync_error_rate: f64,
    /// Admission-control bound of the simulated executor.
    pub max_imm_memtables: usize,
    /// Requests applied to the recovered tree before the final deep check.
    pub continue_ops: u64,
    /// Where to write a post-mortem bundle on failure (or always, with
    /// `always_dump`).
    pub bundle_dir: Option<PathBuf>,
    /// Dump a bundle even on success.
    pub always_dump: bool,
    /// Negative-test hook: mark group-commit writes as acknowledged at
    /// append time, *before* any fsync covers them — the classic
    /// ack-before-fsync bug. The history checker must reject cycles where
    /// the crash eats an "acked" tail. Forces group-commit mode.
    pub inject_ack_bug: bool,
}

impl ConcurrentTortureConfig {
    /// The standard concurrent cycle for `seed`: 3 writers over 2 shards,
    /// 120 requests, 128-key space, 2% WAL-fsync fault rate.
    pub fn for_seed(seed: u64) -> Self {
        ConcurrentTortureConfig {
            seed,
            writers: 3,
            shards: 2,
            ops: 120,
            key_space: 128,
            read_error_rate: 0.005,
            write_error_rate: 0.005,
            wal_sync_error_rate: 0.02,
            max_imm_memtables: 2,
            continue_ops: 40,
            bundle_dir: None,
            always_dump: false,
            inject_ack_bug: false,
        }
    }
}

/// What one concurrent crash cycle did. `PartialEq` so the determinism
/// suite can assert two same-seed runs agree field-for-field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentTortureReport {
    /// The seed that produced this cycle.
    pub seed: u64,
    /// Writer requests issued before the crash (including a failed one).
    pub issued: u64,
    /// Requests acknowledged durable before the crash.
    pub acked: u64,
    /// Scheduler interleaving steps the simulated executor ran.
    pub sim_steps: u64,
    /// Seeded group-commit fsync steps that ran.
    pub group_syncs: u64,
    /// Whether this cycle drew group commit (vs per-request fsync).
    pub group_commit: bool,
    /// Whether a fault ended the workload early (vs the forced cut).
    pub cut_mid_workload: bool,
    /// Per shard: the history prefix the recovered state matched.
    pub matched_prefixes: Vec<u64>,
    /// Live keys recovered across all shards.
    pub recovered_keys: u64,
}

/// Run one seeded *concurrent* crash cycle: M seeded writers interleaved
/// with a [`SimExecutor`](crate::SimExecutor)'s maintenance steps and
/// seeded group-commit fsyncs, over per-shard
/// [`FaultDevice`]s and fsync-fault-armed WALs; then a power cut, WAL
/// tail truncation, recovery, and the per-shard
/// [`HistoryChecker`](crate::HistoryChecker) prefix-durability check plus
/// the deep structural verifier.
///
/// Everything — the interleaving included — derives from `cfg.seed`, so a
/// failing cycle replays byte-for-byte. Failures carry the seed and, when
/// [`ConcurrentTortureConfig::bundle_dir`] is set, a post-mortem bundle
/// with a `scheduler` section (job queue, backlogs, open group-commit
/// rendezvous).
pub fn run_concurrent_crash_cycle(
    cfg: &ConcurrentTortureConfig,
) -> Result<ConcurrentTortureReport, TortureFailure> {
    use crate::config::CommitMode;
    use crate::history::{AckStatus, HistoryChecker, HistoryRecord};
    use crate::scheduler::SchedulerBackend;
    use crate::sharded::ShardedLsmTree;
    use crate::sim::SimExecutor;
    use crate::wal::WalFaultPlan;

    assert!(cfg.writers >= 1 && cfg.shards >= 1, "need at least one writer and shard");
    let wal_dir =
        std::env::temp_dir().join(format!("lsm-ctorture-{}-{}", std::process::id(), cfg.seed));
    let cleanup = || {
        std::fs::remove_dir_all(&wal_dir).ok();
    };
    cleanup();
    std::fs::create_dir_all(&wal_dir).ok();

    let mut rng = SplitMix64::new(cfg.seed ^ 0xC04C_0441_57EE_DEAD);
    let group_commit = cfg.inject_ack_bug || rng.chance(0.7);

    // The black box, as in the single-writer harness: deterministic
    // tracer → flight recorder, decision ledger shared by every shard.
    let recorder = Arc::new(FlightRecorderSink::new(512));
    let ledger = Arc::new(DecisionLedger::new(256));
    let sink = SinkHandle::of(
        Tracer::with_clock(Arc::new(TickClock::new()))
            .trace_to(Arc::clone(&recorder) as Arc<dyn TraceSink>),
    );

    let dump = |reason: &str, error: Option<&str>, scheduler: Option<&Json>| -> Option<PathBuf> {
        let dir = cfg.bundle_dir.as_deref()?;
        let path = bundle_path(dir, cfg.seed);
        let mut pm = PostMortem::new(reason)
            .seed(cfg.seed)
            .repro(&format!(
                "cargo run --release -p lsm-bench --bin lsm_crash -- \
                 --scheduler=background --writers={} --shards={} --seeds=1 --seed-base={}",
                cfg.writers, cfg.shards, cfg.seed
            ))
            .flight(&recorder)
            .ledger(&ledger);
        if let Some(msg) = error {
            pm = pm.error(msg);
        }
        if let Some(section) = scheduler {
            pm = pm.section("scheduler", section.clone());
        }
        pm.write_to(&path).ok()?;
        Some(path)
    };
    let fail = |msg: String, bundle: Option<PathBuf>| TortureFailure {
        seed: cfg.seed,
        message: msg,
        bundle,
    };

    // Per-shard fault devices (seeded per shard) and the simulated
    // scheduler that will make every maintenance decision.
    let inners: Vec<Arc<MemDevice>> =
        (0..cfg.shards).map(|_| Arc::new(MemDevice::with_block_size(1 << 14, 256))).collect();
    let faults: Vec<Arc<FaultDevice>> = inners
        .iter()
        .enumerate()
        .map(|(i, inner)| {
            Arc::new(FaultDevice::new(
                Arc::clone(inner) as Arc<dyn BlockDevice>,
                cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        })
        .collect();
    let sim = Arc::new(SimExecutor::new(cfg.max_imm_memtables, cfg.seed, sink.clone()));

    let opts = TreeOptions::builder()
        .policy(PolicySpec::ChooseBest)
        .retry(RetryPolicy { max_attempts: 4, base_backoff_us: 0 })
        .group_commit(if group_commit { CommitMode::Group } else { CommitMode::PerRequest })
        .sink(sink)
        .ledger(Arc::clone(&ledger))
        .build();
    let tree = ShardedLsmTree::with_backend(
        tiny_cfg(),
        opts,
        faults.iter().map(|f| Arc::clone(f) as Arc<dyn BlockDevice>).collect(),
        Some(&wal_dir),
        Some(Arc::clone(&sim) as Arc<dyn SchedulerBackend>),
    )
    .map_err(|e| {
        let msg = format!("create failed: {e}");
        let bundle = dump("concurrent torture failure: create", Some(&msg), None);
        cleanup();
        fail(msg, bundle)
    })?;

    // Arm faults only now, so creation itself cannot be cut. One seeded
    // shard gets a scheduled device power cut (it fires inside a flush or
    // merge, if maintenance reaches that op count); every shard's WAL gets
    // the fsync fault rate; and a seeded "soft cut" may end the workload
    // between two interleaving steps — the host dying with the devices
    // intact.
    let cut_shard = rng.gen_range(cfg.shards as u64) as usize;
    let cut_at = faults[cut_shard].ops_issued() + 1 + rng.gen_range(cfg.ops / 2 + 1);
    for (i, fault) in faults.iter().enumerate() {
        let mut plan = FaultPlan::none()
            .read_error_rate(cfg.read_error_rate)
            .write_error_rate(cfg.write_error_rate);
        if i == cut_shard {
            plan = plan.power_cut_at(cut_at);
        }
        fault.set_plan(plan);
    }
    for i in 0..cfg.shards {
        tree.set_wal_fault_plan(
            i,
            WalFaultPlan::none().sync_error_rate(cfg.wal_sync_error_rate),
            cfg.seed ^ (i as u64).rotate_left(17),
        );
    }
    let soft_cut_tick: Option<u64> = rng.chance(0.5).then(|| 1 + rng.gen_range(cfg.ops * 2));

    // ------------------------------------------------------------------
    // Phase 1: the interleaved workload. Every iteration makes one seeded
    // choice: a writer op, a scheduler maintenance step, or a group-commit
    // fsync step. The first fault (or the soft cut) ends the workload.
    // ------------------------------------------------------------------
    let mut writer_rngs: Vec<SplitMix64> = (0..cfg.writers)
        .map(|w| SplitMix64::new(cfg.seed ^ (w as u64 + 1).wrapping_mul(0xB0B0_0000_CAFE_F00D)))
        .collect();
    let mut histories: Vec<HistoryChecker> =
        (0..cfg.shards).map(|_| HistoryChecker::new()).collect();
    // Per shard: (history index, WAL offset) of group writes awaiting an
    // fsync that covers them.
    let mut pending_group: Vec<Vec<(usize, u64)>> = vec![Vec::new(); cfg.shards];
    let mut issued = 0u64;
    let mut group_syncs = 0u64;
    let mut cut_mid_workload = false;
    let mut tick = 0u64;

    while issued < cfg.ops {
        tick += 1;
        if soft_cut_tick == Some(tick) {
            cut_mid_workload = true;
            break;
        }
        let choice = rng.gen_range(cfg.writers as u64 + 3);
        if choice < cfg.writers as u64 {
            // One writer op.
            let w = choice as usize;
            let (key, value) = draw_op(&mut writer_rngs[w], cfg.key_space);
            let idx = tree.shard_of(key);
            let req = to_request(&(key, value.clone()));
            issued += 1;
            match tree.apply_routed(idx, req, false) {
                Ok(()) => {
                    let status = if !group_commit || cfg.inject_ack_bug {
                        // PerRequest fsyncs inline before returning; the
                        // injected bug acks group writes here, unsynced.
                        AckStatus::Acked
                    } else {
                        AckStatus::Pending
                    };
                    let rec =
                        histories[idx].append(HistoryRecord { writer: w, key, value, status });
                    if group_commit && !cfg.inject_ack_bug {
                        let seq = tree.wal_lens()[idx];
                        pending_group[idx].push((rec, seq));
                    }
                }
                Err(_) => {
                    // The append may still have reached the log (e.g. an
                    // fsync that failed after the bytes hit the file), so
                    // it stays in the history as a Failed record.
                    histories[idx].append(HistoryRecord {
                        writer: w,
                        key,
                        value,
                        status: AckStatus::Failed,
                    });
                    cut_mid_workload = true;
                    break;
                }
            }
        } else if choice < cfg.writers as u64 + 2 || !group_commit {
            // One scheduler maintenance step.
            if sim.step().is_err() {
                cut_mid_workload = true;
                break;
            }
        } else {
            // One group-commit fsync step on a seeded shard: everything
            // appended so far becomes durable (and acked), or the fsync
            // fails and poisons the shard's WAL and rendezvous.
            let s = rng.gen_range(cfg.shards as u64) as usize;
            match tree.group_sync_step(s) {
                Ok(synced) => {
                    group_syncs += 1;
                    pending_group[s].retain(|&(rec, seq)| {
                        if seq <= synced {
                            histories[s].set_status(rec, AckStatus::Acked);
                            false
                        } else {
                            true
                        }
                    });
                }
                Err(_) => {
                    cut_mid_workload = true;
                    break;
                }
            }
        }
    }
    if !cut_mid_workload {
        for fault in &faults {
            fault.power_cut();
        }
    }
    let sim_steps = sim.steps_taken();
    let acked =
        histories.iter().flat_map(|h| h.records()).filter(|r| r.status == AckStatus::Acked).count()
            as u64;

    // ------------------------------------------------------------------
    // Phase 2: the host dies. Snapshot the scheduler section first (the
    // bundle's forensic view of the job queue and open rendezvous), then
    // leak the tree and truncate each WAL to its synced length plus a
    // seeded slice of the flushed-but-unsynced tail.
    // ------------------------------------------------------------------
    let sched_section = cfg.bundle_dir.is_some().then(|| tree.scheduler_section_json());
    let wal_synced = tree.wal_synced_lens();
    std::mem::forget(tree);
    for (i, &synced) in wal_synced.iter().enumerate() {
        let path = ShardedLsmTree::wal_path(&wal_dir, i);
        let on_disk = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let tail = on_disk.saturating_sub(synced);
        let keep = synced + if tail > 0 { rng.gen_range(tail + 1) } else { 0 };
        if keep < on_disk {
            let truncate =
                std::fs::OpenOptions::new().write(true).open(&path).and_then(|f| f.set_len(keep));
            if let Err(e) = truncate {
                let msg = format!("wal truncate failed for shard {i}: {e}");
                let bundle = dump(
                    "concurrent torture failure: wal truncate",
                    Some(&msg),
                    sched_section.as_ref(),
                );
                cleanup();
                return Err(fail(msg, bundle));
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: recover (WAL-only: fresh shards, full replay of each
    // intact prefix) and check per-shard prefix durability against the
    // recorded histories.
    // ------------------------------------------------------------------
    let r_opts = TreeOptions::builder()
        .policy(PolicySpec::ChooseBest)
        .retry(RetryPolicy { max_attempts: 4, base_backoff_us: 0 })
        .build();
    let recovered =
        ShardedLsmTree::recover_with_wal(tiny_cfg(), r_opts, cfg.shards, 1 << 14, &wal_dir)
            .map_err(|e| {
                let msg = format!("recovery failed: {e}");
                let bundle = dump(
                    "concurrent torture failure: recovery",
                    Some(&msg),
                    sched_section.as_ref(),
                );
                cleanup();
                fail(msg, bundle)
            })?;

    let mut matched_prefixes = Vec::with_capacity(cfg.shards);
    let mut recovered_keys = 0u64;
    for (i, history) in histories.iter().enumerate() {
        let contents: HashMap<u64, Vec<u8>> = recovered
            .with_shard_read(i, |t| {
                t.scan(0, u64::MAX)
                    .map(|r| r.map(|(k, v)| (k, v.to_vec())))
                    .collect::<crate::error::Result<_>>()
            })
            .map_err(|e| {
                let msg = format!("scan of recovered shard {i} failed: {e}");
                let bundle = dump(
                    "concurrent torture failure: recovered scan",
                    Some(&msg),
                    sched_section.as_ref(),
                );
                cleanup();
                fail(msg, bundle)
            })?;
        recovered_keys += contents.len() as u64;
        match history.check(&contents) {
            Ok(prefix) => matched_prefixes.push(prefix as u64),
            Err(violation) => {
                let msg = format!(
                    "durability history violation on shard {i}: {violation} \
                     ({} recovered keys, {} acked of {} issued)",
                    contents.len(),
                    acked,
                    issued
                );
                let bundle = dump(
                    "concurrent torture failure: durability history",
                    Some(&msg),
                    sched_section.as_ref(),
                );
                cleanup();
                return Err(fail(msg, bundle));
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: life goes on — the recovered tree takes new writes, then
    // passes the deep structural check on every shard.
    // ------------------------------------------------------------------
    for i in 0..cfg.continue_ops {
        let op = draw_op(&mut rng, cfg.key_space);
        recovered.apply(to_request(&op)).map_err(|e| {
            let msg = format!("continuation op {i} failed: {e}");
            let bundle = dump(
                "concurrent torture failure: continuation",
                Some(&msg),
                sched_section.as_ref(),
            );
            cleanup();
            fail(msg, bundle)
        })?;
    }
    if let Err(e) = recovered.flush() {
        let msg = format!("post-recovery flush failed: {e}");
        let bundle = dump("concurrent torture failure: flush", Some(&msg), sched_section.as_ref());
        cleanup();
        return Err(fail(msg, bundle));
    }
    if let Err(e) = recovered.deep_verify(true) {
        let msg = format!("deep check after recovery failed: {e}");
        let bundle =
            dump("concurrent torture failure: deep check", Some(&msg), sched_section.as_ref());
        cleanup();
        return Err(fail(msg, bundle));
    }

    if cfg.always_dump {
        dump("explicit dump", None, sched_section.as_ref());
    }
    drop(recovered);
    cleanup();
    Ok(ConcurrentTortureReport {
        seed: cfg.seed,
        issued,
        acked,
        sim_steps,
        group_syncs,
        group_commit,
        cut_mid_workload,
        matched_prefixes,
        recovered_keys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_deterministic() {
        let a = run_crash_cycle(&TortureConfig::for_seed(42)).unwrap();
        let b = run_crash_cycle(&TortureConfig::for_seed(42)).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same cycle");
    }

    #[test]
    fn a_few_cycles_pass() {
        for seed in 0..8u64 {
            let report = run_crash_cycle(&TortureConfig::for_seed(seed))
                .unwrap_or_else(|e| panic!("cycle failed: {e}"));
            assert!(report.matched_prefix >= report.durable_floor);
            assert!(report.matched_prefix <= report.issued);
        }
    }

    #[test]
    fn file_backend_cycles_pass() {
        // Seeds not shared with the mem-backend tests in this module, so
        // parallel test threads never collide on the per-seed temp files.
        for seed in 3000..3006u64 {
            let mut cfg = TortureConfig::for_seed(seed);
            cfg.backend = TortureBackend::File;
            let report =
                run_crash_cycle(&cfg).unwrap_or_else(|e| panic!("file-backend cycle failed: {e}"));
            assert!(report.matched_prefix >= report.durable_floor);
            assert!(report.matched_prefix <= report.issued);
        }
    }

    #[test]
    fn file_backend_is_deterministic() {
        let mut cfg = TortureConfig::for_seed(3100);
        cfg.backend = TortureBackend::File;
        let a = run_crash_cycle(&cfg).unwrap_or_else(|e| panic!("first run failed: {e}"));
        let b = run_crash_cycle(&cfg).unwrap_or_else(|e| panic!("second run failed: {e}"));
        assert_eq!(a, b, "same seed over a file device must reproduce the same cycle");
    }

    #[test]
    fn same_seed_bundles_are_byte_identical() {
        let base = std::env::temp_dir().join(format!("lsm-bundle-det-{}", std::process::id()));
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        // A seed no other test in this module touches, so concurrent test
        // threads never share the cycle's temp manifest/WAL files.
        let mut cfg = TortureConfig::for_seed(9001);
        cfg.always_dump = true;
        cfg.bundle_dir = Some(dir_a.clone());
        run_crash_cycle(&cfg).unwrap_or_else(|e| panic!("first run failed: {e}"));
        cfg.bundle_dir = Some(dir_b.clone());
        run_crash_cycle(&cfg).unwrap_or_else(|e| panic!("second run failed: {e}"));

        let a = std::fs::read(bundle_path(&dir_a, 9001)).expect("first bundle written");
        let b = std::fs::read(bundle_path(&dir_b, 9001)).expect("second bundle written");
        assert_eq!(a, b, "same-seed bundles must be byte-identical");

        let text = String::from_utf8(a).expect("bundle is UTF-8");
        let doc = Json::parse(&text).expect("bundle parses");
        let problems = crate::postmortem::validate_bundle(&doc);
        assert!(problems.is_empty(), "invalid bundle: {problems:?}");
        // The bundle names its seed and an exact repro command, and carries
        // the black box: flight events, ledger, wear, and the tree section.
        let Json::Obj(pairs) = doc else { panic!("bundle not an object") };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        assert_eq!(get("seed"), Some(Json::from(9001u64)));
        let Some(Json::Str(repro)) = get("repro") else { panic!("missing repro") };
        assert!(repro.contains("--seed-base=9001"), "repro names the seed: {repro}");
        for key in ["flight", "ledger", "wear", "device_io", "tree"] {
            assert!(get(key).is_some(), "bundle missing {key} section");
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn failure_display_names_seed_and_bundle() {
        let plain = TortureFailure { seed: 7, message: "boom".into(), bundle: None };
        assert_eq!(plain.to_string(), "[seed 7] boom");
        let with_bundle = TortureFailure {
            seed: 7,
            message: "boom".into(),
            bundle: Some(PathBuf::from("/tmp/x/lsm_crash_seed_7.postmortem.json")),
        };
        assert_eq!(
            with_bundle.to_string(),
            "[seed 7] boom (post-mortem: /tmp/x/lsm_crash_seed_7.postmortem.json)"
        );
        assert_eq!(
            bundle_path(Path::new("/tmp/x"), 7),
            PathBuf::from("/tmp/x/lsm_crash_seed_7.postmortem.json")
        );
    }
}
