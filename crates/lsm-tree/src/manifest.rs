//! Checkpoint & recovery: persisting the index's metadata.
//!
//! The paper notes that the internal B+tree nodes (our fence tables) "can
//! be reconstructed from data blocks and hence need not be persisted"
//! (§V, footnote). A production index still wants a cheap way to reopen
//! without scanning the whole device, so this module provides a
//! LevelDB-style **manifest**: a checksummed snapshot of the fence tables,
//! per-level merge bookkeeping, policy cursors, and the memory-resident L0
//! (which would otherwise need a write-ahead log).
//!
//! `LsmTree::checkpoint` writes the manifest to a sidecar file;
//! `LsmTree::restore` reopens a device against one. The format is a
//! hand-rolled little-endian binary layout (no serialization-format
//! dependency), guarded by a magic, a version, and an FNV-1a checksum over
//! the entire body.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use bytes::{BufMut, BytesMut};

use sim_ssd::{BlockDevice, BlockId};

use crate::block::BlockHandle;
use crate::config::LsmConfig;
use crate::error::{LsmError, Result};
use crate::level::Level;
use crate::memtable::Memtable;
use crate::record::{Key, OpKind, Record, Request};
use crate::store::Store;
use crate::tree::{LsmTree, TreeOptions};

const MANIFEST_MAGIC: u32 = 0x4C_53_4D_4D; // "LSMM"
const MANIFEST_VERSION: u32 = 1;

/// Everything needed to reopen an index: geometry, level fence tables,
/// waste bookkeeping, cursors, and the L0 contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The index geometry the manifest was taken under.
    pub config: LsmConfig,
    /// L0 records at checkpoint time.
    pub memtable: Vec<Record>,
    /// L0's round-robin cursor.
    pub mem_rr_cursor: Option<Key>,
    /// Per-level snapshots, top to bottom (`[0]` = L1).
    pub levels: Vec<LevelSnapshot>,
}

/// Snapshot of one on-SSD level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSnapshot {
    /// Fence entries (block id, key range, counts); Bloom filters are not
    /// persisted — they regenerate as blocks are rewritten.
    pub handles: Vec<HandleSnapshot>,
    /// `m_i` — merges since the last compaction.
    pub merges_since_compaction: u64,
    /// Accumulated preservation slack.
    pub slack_budget: f64,
    /// `w_i` — net empty-slot increase since the last compaction.
    pub waste_delta: i64,
    /// Round-robin cursor.
    pub rr_cursor: Option<Key>,
}

/// Persistable fence entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandleSnapshot {
    /// Physical block id.
    pub id: u64,
    /// Smallest key.
    pub min: Key,
    /// Largest key.
    pub max: Key,
    /// Records in the block.
    pub count: u32,
    /// Tombstones among them.
    pub tombstones: u32,
}

impl Manifest {
    /// Capture the state of `tree`.
    pub fn capture(tree: &LsmTree) -> Manifest {
        Manifest {
            config: tree.config().clone(),
            // Sealed memtables fold in oldest-first, the active one last:
            // restore replays these in order, so the newest version of each
            // key wins. The checkpoint format is unchanged — a background
            // tree's backlog simply lands in the (bigger) memtable section.
            memtable: tree
                .imm_memtables()
                .flat_map(|m| m.iter())
                .chain(tree.memtable().iter())
                .cloned()
                .collect(),
            mem_rr_cursor: tree.mem_rr_cursor(),
            levels: tree
                .levels()
                .iter()
                .map(|lvl| LevelSnapshot {
                    handles: lvl
                        .handles()
                        .iter()
                        .map(|h| HandleSnapshot {
                            id: h.id.raw(),
                            min: h.min,
                            max: h.max,
                            count: h.count,
                            tombstones: h.tombstones,
                        })
                        .collect(),
                    merges_since_compaction: lvl.merges_since_compaction,
                    slack_budget: lvl.slack_budget,
                    waste_delta: lvl.waste_delta,
                    rr_cursor: lvl.rr_cursor,
                })
                .collect(),
        }
    }

    /// Serialize to the binary manifest format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        let c = &self.config;
        body.put_u64_le(c.block_size as u64);
        body.put_u64_le(c.payload_size as u64);
        body.put_u64_le(c.k0_blocks as u64);
        body.put_u64_le(c.gamma as u64);
        body.put_f64_le(c.waste_eps);
        body.put_f64_le(c.merge_rate);
        body.put_u64_le(c.cache_blocks as u64);
        body.put_u64_le(c.bloom_bits_per_key as u64);
        put_opt_key(&mut body, self.mem_rr_cursor);
        body.put_u32_le(self.memtable.len() as u32);
        for r in &self.memtable {
            body.put_u64_le(r.key);
            body.put_u8(if r.is_tombstone() { 1 } else { 0 });
            body.put_u32_le(r.payload.len() as u32);
            body.put_slice(&r.payload);
        }
        body.put_u32_le(self.levels.len() as u32);
        for lvl in &self.levels {
            body.put_u64_le(lvl.merges_since_compaction);
            body.put_f64_le(lvl.slack_budget);
            body.put_i64_le(lvl.waste_delta);
            put_opt_key(&mut body, lvl.rr_cursor);
            body.put_u32_le(lvl.handles.len() as u32);
            for h in &lvl.handles {
                body.put_u64_le(h.id);
                body.put_u64_le(h.min);
                body.put_u64_le(h.max);
                body.put_u32_le(h.count);
                body.put_u32_le(h.tombstones);
            }
        }

        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse a manifest previously produced by [`Manifest::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.u32()?;
        if magic != MANIFEST_MAGIC {
            return Err(LsmError::Codec(format!("bad manifest magic 0x{magic:08x}")));
        }
        let version = r.u32()?;
        if version != MANIFEST_VERSION {
            return Err(LsmError::Codec(format!("unsupported manifest version {version}")));
        }
        let checksum = r.u64()?;
        if fnv1a64(&bytes[r.pos..]) != checksum {
            return Err(LsmError::Codec("manifest checksum mismatch".into()));
        }
        let config = LsmConfig {
            block_size: r.u64()? as usize,
            payload_size: r.u64()? as usize,
            k0_blocks: r.u64()? as usize,
            gamma: r.u64()? as usize,
            waste_eps: r.f64()?,
            merge_rate: r.f64()?,
            cache_blocks: r.u64()? as usize,
            bloom_bits_per_key: r.u64()? as usize,
        };
        let mem_rr_cursor = r.opt_key()?;
        let n_mem = r.u32()? as usize;
        let mut memtable = Vec::with_capacity(n_mem.min(1 << 20));
        for _ in 0..n_mem {
            let key = r.u64()?;
            let op = if r.u8()? == 1 { OpKind::Delete } else { OpKind::Put };
            let len = r.u32()? as usize;
            let payload = bytes::Bytes::copy_from_slice(r.take(len)?);
            memtable.push(Record { key, op, payload });
        }
        let n_levels = r.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(64));
        for _ in 0..n_levels {
            let merges_since_compaction = r.u64()?;
            let slack_budget = r.f64()?;
            let waste_delta = r.i64()?;
            let rr_cursor = r.opt_key()?;
            let n_handles = r.u32()? as usize;
            let mut handles = Vec::with_capacity(n_handles.min(1 << 22));
            for _ in 0..n_handles {
                handles.push(HandleSnapshot {
                    id: r.u64()?,
                    min: r.u64()?,
                    max: r.u64()?,
                    count: r.u32()?,
                    tombstones: r.u32()?,
                });
            }
            levels.push(LevelSnapshot {
                handles,
                merges_since_compaction,
                slack_budget,
                waste_delta,
                rr_cursor,
            });
        }
        if r.pos != bytes.len() {
            return Err(LsmError::Codec("trailing bytes after manifest".into()));
        }
        Ok(Manifest { config, memtable, mem_rr_cursor, levels })
    }

    /// Every block id the manifest references.
    pub fn used_block_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.levels.iter().flat_map(|l| l.handles.iter().map(|h| h.id))
    }
}

fn put_opt_key(body: &mut BytesMut, k: Option<Key>) {
    match k {
        Some(k) => {
            body.put_u8(1);
            body.put_u64_le(k);
        }
        None => body.put_u8(0),
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(LsmError::Codec("truncated manifest".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn opt_key(&mut self) -> Result<Option<Key>> {
        Ok(if self.u8()? == 1 { Some(self.u64()?) } else { None })
    }
}

impl LsmTree {
    /// Write a checkpoint manifest for this index to `path` (atomically:
    /// written to a temp file and renamed). The device itself is synced
    /// first so the manifest never references unwritten blocks.
    ///
    /// Crash-safe ordering: blocks referenced by the *previous* durable
    /// manifest are never trimmed before the new manifest's rename commits
    /// (the store defers those frees), so a power cut at any point leaves a
    /// manifest on disk whose blocks are all intact.
    pub fn checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let _span = self.sink().span(observe::SpanOp::checkpoint());
        self.store().sync()?;
        let manifest = Manifest::capture(self);
        let bytes = manifest.encode();
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(sim_ssd::DeviceError::Io)?;
            f.write_all(&bytes).map_err(sim_ssd::DeviceError::Io)?;
            f.sync_all().map_err(sim_ssd::DeviceError::Io)?;
        }
        std::fs::rename(&tmp, path).map_err(sim_ssd::DeviceError::Io)?;
        // A rename is only durable once the directory entry itself is on
        // disk; without this fsync a power cut can roll the directory back
        // to the old (or no) manifest even though the data file was synced.
        sim_ssd::fsync_parent_dir(path).map_err(sim_ssd::DeviceError::Io)?;
        // The rename committed: the new manifest's blocks become the
        // protected set and frees deferred on behalf of the old one happen.
        self.store().finish_checkpoint(manifest.used_block_ids())?;
        self.sink()
            .emit_with(|| observe::Event::Checkpoint { live_blocks: self.store().live_blocks() });
        Ok(())
    }

    /// Reopen an index from a checkpoint manifest and the device it
    /// references. `opts` chooses the policy for the new incarnation (the
    /// manifest stores data layout, not policy). Fails if the manifest is
    /// corrupt or its geometry does not match the device.
    pub fn restore<P: AsRef<Path>>(
        path: P,
        opts: TreeOptions,
        device: Arc<dyn BlockDevice>,
    ) -> Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path.as_ref())
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(sim_ssd::DeviceError::Io)?;
        let manifest = Manifest::decode(&bytes)?;
        let cfg = manifest.config.clone().validated()?;
        if device.block_size() != cfg.block_size {
            return Err(LsmError::Config(format!(
                "device block size {} != manifest {}",
                device.block_size(),
                cfg.block_size
            )));
        }
        let store = Store::with_allocated(
            device,
            cfg.cache_blocks,
            cfg.bloom_bits_per_key,
            manifest.used_block_ids(),
        )
        .with_retry(opts.retry);

        let mut levels = Vec::with_capacity(manifest.levels.len().max(1));
        for (idx, snap) in manifest.levels.iter().enumerate() {
            let mut level = Level::new();
            let mut prev_max: Option<u64> = None;
            for h in &snap.handles {
                // Defend against a syntactically valid but structurally
                // corrupt manifest: handles must be ordered and disjoint.
                if h.min > h.max || prev_max.is_some_and(|pm| pm >= h.min) {
                    return Err(LsmError::Codec(format!(
                        "manifest level L{} has unordered/overlapping handles",
                        idx + 1
                    )));
                }
                prev_max = Some(h.max);
                level.push(BlockHandle {
                    id: BlockId(h.id),
                    min: h.min,
                    max: h.max,
                    count: h.count,
                    tombstones: h.tombstones,
                    bloom: None,
                });
            }
            level.merges_since_compaction = snap.merges_since_compaction;
            level.slack_budget = snap.slack_budget;
            level.waste_delta = snap.waste_delta;
            level.rr_cursor = snap.rr_cursor;
            levels.push(level);
        }
        if levels.is_empty() {
            levels.push(Level::new());
        }

        let mut mem = Memtable::new();
        for r in manifest.memtable {
            let req = match r.op {
                OpKind::Put => Request::Put(r.key, r.payload),
                OpKind::Delete => Request::Delete(r.key),
            };
            mem.apply(req);
        }

        Ok(LsmTree::assemble(cfg, opts, store, mem, levels, manifest.mem_rr_cursor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;

    fn build_tree() -> LsmTree {
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        let mut t = LsmTree::with_mem_device(
            cfg,
            TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
            1 << 14,
        )
        .unwrap();
        for k in 0..1500u64 {
            t.put(k * 13 % 9973, vec![(k % 251) as u8; 4]).unwrap();
        }
        for k in (0..1500u64).step_by(3) {
            t.delete(k * 13 % 9973).unwrap();
        }
        t
    }

    #[test]
    fn manifest_round_trips() {
        let tree = build_tree();
        let m = Manifest::capture(&tree);
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert!(m.used_block_ids().count() > 0);
    }

    #[test]
    fn decode_rejects_corruption() {
        let tree = build_tree();
        let bytes = Manifest::capture(&tree).encode();
        for pos in [0usize, 5, 12, 40, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(Manifest::decode(&bad).is_err(), "corruption at {pos} accepted");
        }
        assert!(Manifest::decode(&bytes[..bytes.len() - 3]).is_err(), "truncation accepted");
    }

    #[test]
    fn restore_rejects_structurally_corrupt_manifest() {
        let tree = build_tree();
        let mut m = Manifest::capture(&tree);
        // Swap two handles of the largest level: ordered-disjoint breaks.
        let lvl = m.levels.iter_mut().max_by_key(|l| l.handles.len()).unwrap();
        assert!(lvl.handles.len() >= 2, "need at least two handles");
        lvl.handles.swap(0, 1);
        let bytes = m.encode();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lsm-man-corrupt-{}.manifest", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let dev = std::sync::Arc::new(sim_ssd::MemDevice::with_block_size(1 << 14, 256));
        let got = LsmTree::restore(&path, TreeOptions::default(), dev);
        assert!(matches!(got, Err(LsmError::Codec(_))), "corrupt manifest accepted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_fsyncs_the_manifest_directory() {
        let tree = build_tree();
        let path =
            std::env::temp_dir().join(format!("lsm-man-dirsync-{}.manifest", std::process::id()));
        let before = sim_ssd::dir_syncs();
        tree.checkpoint(&path).unwrap();
        // Regression: the rename used to commit without syncing the
        // directory, so a power cut could roll the directory entry back
        // even though the manifest file's contents were fsynced.
        assert!(
            sim_ssd::dir_syncs() > before,
            "checkpoint must fsync the manifest's parent directory after the rename"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_rejects_wrong_magic_and_version() {
        let tree = build_tree();
        let mut bytes = Manifest::capture(&tree).encode();
        bytes[0] ^= 0xFF;
        assert!(Manifest::decode(&bytes).is_err());
        let mut bytes = Manifest::capture(&tree).encode();
        bytes[4] = 99;
        assert!(Manifest::decode(&bytes).is_err());
    }
}
