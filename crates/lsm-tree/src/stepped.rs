//! Stepped-Merge — the multi-run-per-level baseline (§VI).
//!
//! Cassandra's and HBase's default merge options are "basically
//! Stepped-Merge" (Jagadish et al., VLDB 1997): each level accumulates up
//! to `k` immutable sorted runs; when the k-th run arrives, all k runs
//! are merge-sorted into a single run one level down. Every record is
//! written once per level, so merge cost is far below leveled LSM — but a
//! lookup must now examine up to `k` runs *per level*, which is exactly
//! the trade the paper declines: "In reducing merge costs, however,
//! Stepped-Merge sacrifices lookups. In contrast, partial merges … reduce
//! merge cost without penalizing lookups; we follow the same philosophy."
//!
//! This implementation shares the storage substrate and cost accounting
//! with [`crate::LsmTree`] so the two designs are compared on identical
//! terms (`ext_stepped_merge` in the bench crate).

use std::sync::Arc;

use bytes::Bytes;
use observe::{Event, SinkHandle, SpanOp};

use sim_ssd::BlockDevice;

use crate::block::BlockHandle;
use crate::config::LsmConfig;
use crate::error::{LsmError, Result};
use crate::memtable::Memtable;
use crate::record::{Key, OpKind, Record, Request};
use crate::stats::TreeStats;
use crate::store::Store;
use crate::tree::TreeOptions;

/// One immutable sorted run.
#[derive(Debug, Clone, Default)]
pub struct Run {
    handles: Vec<BlockHandle>,
    records: u64,
}

impl Run {
    /// Blocks in the run.
    pub fn num_blocks(&self) -> usize {
        self.handles.len()
    }

    /// Records in the run.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn find_block_for(&self, key: Key) -> Option<&BlockHandle> {
        let idx = self.handles.partition_point(|h| h.max < key);
        self.handles.get(idx).filter(|h| h.min <= key)
    }
}

/// A Stepped-Merge index: levels of up to `k` runs each.
pub struct SteppedMergeTree {
    cfg: LsmConfig,
    /// Fan-in: runs accumulated per level before merging down.
    k: usize,
    store: Store,
    mem: Memtable,
    /// `levels[i]` holds the runs of on-SSD level `i+1`, newest last.
    levels: Vec<Vec<Run>>,
    stats: TreeStats,
    sink: SinkHandle,
}

impl SteppedMergeTree {
    /// Create over an existing device. The fan-in `k ≥ 2` comes from
    /// [`TreeOptions::stepped_fan_in`](crate::TreeOptions) — like the
    /// leveled tree, the stepped baseline is configured exclusively through
    /// [`TreeOptions::builder`](crate::TreeOptions::builder), which also
    /// routes the sink and retry policy. (The merge-policy and ledger
    /// options do not apply: stepped merges are always full-level, so
    /// there is no per-merge decision to record.)
    pub fn new(cfg: LsmConfig, opts: TreeOptions, device: Arc<dyn BlockDevice>) -> Result<Self> {
        let cfg = cfg.validated()?;
        let k = opts.stepped_fan_in;
        if k < 2 {
            return Err(LsmError::Config("stepped-merge fan-in must be ≥ 2".into()));
        }
        if device.block_size() != cfg.block_size {
            return Err(LsmError::Config(format!(
                "device block size {} != configured {}",
                device.block_size(),
                cfg.block_size
            )));
        }
        let store =
            Store::new(device, cfg.cache_blocks, cfg.bloom_bits_per_key).with_retry(opts.retry);
        let mut tree = SteppedMergeTree {
            cfg,
            k,
            store,
            mem: Memtable::new(),
            levels: Vec::new(),
            stats: TreeStats::default(),
            sink: SinkHandle::none(),
        };
        tree.set_sink(opts.sink);
        Ok(tree)
    }

    /// Register (or detach, with [`SinkHandle::none`]) the event sink —
    /// same contract as [`crate::LsmTree::set_sink`]: flush/merge events
    /// and spans from this tree plus the store's cache and device events
    /// all flow to the one sink, so the baseline traces on equal terms
    /// with the leveled tree.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.store.set_sink(sink.clone());
        self.sink = sink;
    }

    /// The currently registered sink (detached by default).
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Create over a fresh in-memory device (fan-in and the rest from
    /// `opts`, as in [`SteppedMergeTree::new`]).
    pub fn with_mem_device(cfg: LsmConfig, opts: TreeOptions, device_blocks: u64) -> Result<Self> {
        let dev = Arc::new(sim_ssd::MemDevice::with_block_size(device_blocks, cfg.block_size));
        Self::new(cfg, opts, dev)
    }

    /// Insert or update.
    pub fn put(&mut self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.apply(Request::Put(key, payload.into()))
    }

    /// Delete.
    pub fn delete(&mut self, key: Key) -> Result<()> {
        self.apply(Request::Delete(key))
    }

    /// Apply one request.
    pub fn apply(&mut self, req: Request) -> Result<()> {
        match &req {
            Request::Put(..) => self.stats.puts += 1,
            Request::Delete(_) => self.stats.deletes += 1,
        }
        self.mem.apply(req);
        if self.mem.len() >= self.cfg.l0_capacity_records() {
            let _cascade = self.sink.span(SpanOp::cascade());
            let records = self.mem.extract_all();
            self.flush_run_into(0, records)?;
        }
        Ok(())
    }

    /// Write `records` as a new run of `levels[idx]`, then cascade merges.
    fn flush_run_into(&mut self, idx: usize, records: Vec<Record>) -> Result<()> {
        if self.levels.len() <= idx {
            self.levels.resize_with(idx + 1, Vec::new);
        }
        let run = if idx == 0 {
            // The L0→L1 run write is the memtable flush; deeper run writes
            // are merge output and stay inside their merge span.
            let _span = self.sink.span(SpanOp::flush(true));
            let records_flushed = records.len() as u64;
            self.sink.emit_with(|| Event::MemtableFlush { records: records_flushed, full: true });
            self.write_run(idx, records)?
        } else {
            self.write_run(idx, records)?
        };
        if run.records > 0 {
            self.levels[idx].push(run);
        }
        if self.levels[idx].len() >= self.k {
            self.merge_level_down(idx)?;
        }
        Ok(())
    }

    fn write_run(&mut self, idx: usize, records: Vec<Record>) -> Result<Run> {
        let b = self.cfg.block_capacity();
        let mut run = Run::default();
        let paper_level = idx + 1;
        for chunk in records.chunks(b) {
            let handle = self.store.write_block(chunk.to_vec())?;
            run.records += u64::from(handle.count);
            run.handles.push(handle);
            self.stats.level_mut(paper_level).blocks_written += 1;
        }
        self.stats.level_mut(paper_level).merges_in += 1;
        self.stats.level_mut(paper_level).records_in += run.records;
        Ok(run)
    }

    /// Merge-sort all runs of `levels[idx]` into one run at `idx + 1`.
    fn merge_level_down(&mut self, idx: usize) -> Result<()> {
        let target_paper = idx + 2;
        // Stepped merges are always "full" (all k runs at once); a deeper
        // cascade triggered by the output run nests as a child span.
        let _span = self.sink.span(SpanOp::merge(target_paper, true));
        self.sink.emit_with(|| Event::MergeStart { target_level: target_paper, full: true });
        let runs = std::mem::take(&mut self.levels[idx]);
        let src_records: u64 = runs.iter().map(Run::records).sum();
        // Tombstones can be dropped when merging out of the deepest
        // populated level (nothing below to cancel).
        let is_deepest = self.levels.iter().skip(idx + 1).all(Vec::is_empty);
        let reads: u64 = runs.iter().map(|r| r.num_blocks() as u64).sum();
        let merged = self.merge_runs(&runs, idx + 1, !is_deepest)?;
        for run in &runs {
            for h in &run.handles {
                self.store.free_block(h)?;
            }
        }
        let max_key = merged.last().map_or(0, |r| r.key);
        let writes_before = self.stats.level(target_paper).blocks_written;
        self.flush_run_into(idx + 1, merged)?;
        let writes = self.stats.level(target_paper).blocks_written - writes_before;
        self.sink.emit_with(|| Event::MergeFinish {
            target_level: target_paper,
            full: true,
            src_records,
            writes,
            reads,
            preserved: 0,
            max_key,
        });
        Ok(())
    }

    /// K-way merge with newest-run-wins consolidation. Counts one logical
    /// read per input block.
    fn merge_runs(
        &mut self,
        runs: &[Run],
        target_paper_level: usize,
        keep_tombstones: bool,
    ) -> Result<Vec<Record>> {
        // Cursors: (run_priority, handle_idx, record_idx, decoded block).
        struct Cursor {
            blocks: Vec<Arc<crate::block::DataBlock>>,
            bpos: usize,
            rpos: usize,
        }
        let mut cursors = Vec::with_capacity(runs.len());
        for run in runs {
            let mut blocks = Vec::with_capacity(run.handles.len());
            for h in &run.handles {
                blocks.push(self.store.read_block(h)?);
                self.stats.level_mut(target_paper_level).blocks_read += 1;
            }
            cursors.push(Cursor { blocks, bpos: 0, rpos: 0 });
        }
        let peek =
            |c: &Cursor| -> Option<Key> { c.blocks.get(c.bpos).map(|b| b.records[c.rpos].key) };
        let advance = |c: &mut Cursor| {
            c.rpos += 1;
            if c.rpos >= c.blocks[c.bpos].len() {
                c.rpos = 0;
                c.bpos += 1;
            }
        };
        let mut out: Vec<Record> = Vec::new();
        loop {
            // Smallest key across cursors; newest run (highest index) wins.
            let mut min_key: Option<Key> = None;
            for c in cursors.iter() {
                if let Some(k) = peek(c) {
                    min_key = Some(min_key.map_or(k, |m: Key| m.min(k)));
                }
            }
            let Some(key) = min_key else { break };
            let mut winner: Option<Record> = None;
            for c in cursors.iter_mut().rev() {
                if peek(c) == Some(key) {
                    let r = c.blocks[c.bpos].records[c.rpos].clone();
                    if winner.is_none() {
                        winner = Some(r);
                    }
                    advance(c);
                }
            }
            let winner = winner.expect("frontier key came from some cursor");
            if winner.op == OpKind::Put || keep_tombstones {
                out.push(winner);
            }
        }
        Ok(out)
    }

    /// Point lookup: memtable, then every level's runs newest-first.
    pub fn get(&self, key: Key) -> Result<Option<Bytes>> {
        let _span = self.sink.span(SpanOp::lookup());
        self.stats.note_lookup();
        if let Some(r) = self.mem.get(key) {
            return Ok(match r.op {
                OpKind::Put => Some(r.payload.clone()),
                OpKind::Delete => None,
            });
        }
        for level in &self.levels {
            for run in level.iter().rev() {
                let Some(handle) = run.find_block_for(key) else { continue };
                if let Some(bloom) = &handle.bloom {
                    if !bloom.may_contain(key) {
                        self.stats.note_lookup_costs(0, 1);
                        continue;
                    }
                }
                let block = self.store.read_block(handle)?;
                self.stats.note_lookup_costs(1, 0);
                if let Some(r) = block.find(key) {
                    return Ok(match r.op {
                        OpKind::Put => Some(r.payload.clone()),
                        OpKind::Delete => None,
                    });
                }
            }
        }
        Ok(None)
    }

    /// Cost counters (same shape as the LSM-tree's).
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Storage services.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Runs per level, top to bottom.
    pub fn run_counts(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Maximum number of sorted runs a lookup may probe (L0 excluded).
    pub fn lookup_fanout(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Total records (shadowed versions included).
    pub fn record_count(&self) -> u64 {
        self.mem.len() as u64
            + self.levels.iter().flat_map(|l| l.iter().map(Run::records)).sum::<u64>()
    }

    /// Force the (possibly non-full) memtable out as a run, cascading any
    /// level merges it triggers. A no-op when the memtable is empty.
    pub fn flush_memtable(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let _cascade = self.sink.span(SpanOp::cascade());
        let records = self.mem.extract_all();
        self.flush_run_into(0, records)
    }
}

impl crate::api::WriteApi for SteppedMergeTree {
    fn apply(&mut self, req: Request) -> Result<()> {
        SteppedMergeTree::apply(self, req)
    }

    fn flush(&mut self) -> Result<()> {
        self.flush_memtable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SteppedMergeTree {
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 2,
            gamma: 4, // unused by stepped-merge except capacity math
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        SteppedMergeTree::with_mem_device(
            cfg,
            TreeOptions::builder().stepped_fan_in(3).build(),
            1 << 16,
        )
        .unwrap()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut t = tiny();
        for k in 0..500u64 {
            t.put(k * 3, vec![(k % 251) as u8; 4]).unwrap();
        }
        for k in (0..500u64).step_by(2) {
            t.delete(k * 3).unwrap();
        }
        for k in 0..500u64 {
            let got = t.get(k * 3).unwrap();
            if k % 2 == 0 {
                assert_eq!(got, None, "key {k}");
            } else {
                assert_eq!(got.as_deref(), Some(&vec![(k % 251) as u8; 4][..]), "key {k}");
            }
        }
    }

    #[test]
    fn levels_accumulate_up_to_k_runs() {
        let mut t = tiny();
        for k in 0..10_000u64 {
            t.put(k.wrapping_mul(2_654_435_761) % 100_000, vec![1u8; 4]).unwrap();
        }
        for (i, &count) in t.run_counts().iter().enumerate() {
            assert!(count < 3, "level {i} holds {count} runs, fan-in is 3");
        }
        assert!(t.lookup_fanout() >= 1);
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let mut t = tiny();
        // Fill enough that key 42's old version lands in a run, then
        // overwrite it; the merge and lookups must prefer the new one.
        t.put(42, vec![1u8; 4]).unwrap();
        for k in 1_000..1_200u64 {
            t.put(k, vec![0u8; 4]).unwrap();
        }
        t.put(42, vec![2u8; 4]).unwrap();
        for k in 2_000..2_200u64 {
            t.put(k, vec![0u8; 4]).unwrap();
        }
        assert_eq!(t.get(42).unwrap().as_deref(), Some(&[2u8; 4][..]));
    }

    #[test]
    fn stepped_merge_writes_less_than_leveled_lsm() {
        // The §VI trade: stepped-merge writes each record ~once per level;
        // leveled LSM rewrites the next level repeatedly.
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 2,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        let mut sm = SteppedMergeTree::with_mem_device(
            cfg.clone(),
            TreeOptions::builder().stepped_fan_in(4).build(),
            1 << 16,
        )
        .unwrap();
        let mut lsm =
            crate::LsmTree::with_mem_device(cfg, crate::TreeOptions::default(), 1 << 16).unwrap();
        for k in 0..8_000u64 {
            let key = k.wrapping_mul(2_654_435_761) % 1_000_000;
            sm.put(key, vec![1u8; 4]).unwrap();
            lsm.put(key, vec![1u8; 4]).unwrap();
        }
        let w_sm = sm.stats().total_blocks_written();
        let w_lsm = lsm.stats().total_blocks_written();
        assert!(w_sm < w_lsm, "stepped-merge {w_sm} should write less than leveled {w_lsm}");
        // …and the price: more runs to probe per lookup.
        assert!(sm.lookup_fanout() >= 2);
    }

    #[test]
    fn rejects_bad_fan_in() {
        let cfg = LsmConfig { block_size: 256, payload_size: 4, ..LsmConfig::default() };
        let opts = TreeOptions::builder().stepped_fan_in(1).build();
        assert!(SteppedMergeTree::with_mem_device(cfg, opts, 1 << 10).is_err());
    }
}
