//! Background merge scheduler: flush/merge maintenance as worker-pool jobs.
//!
//! The paper's partial, block-preserving merges make each maintenance step
//! cheap (Theorem 2 bounds a `ChooseBest` merge at δ(1/Γ+1)·K_i blocks);
//! this module is what makes that cheapness visible in foreground tail
//! latency instead of only in write amplification. With
//! [`Scheduler::Background`](crate::Scheduler) a `put` that fills the
//! memtable *seals* it — swaps in a fresh one and queues the immutable one
//! — and returns; the actual flush and any cascade of level merges run
//! here, one bounded [`LsmTree::maintenance_step`](crate::LsmTree) per
//! tree-lock acquisition so writers interleave between steps.
//!
//! Mechanics:
//!
//! * **Jobs** are shard ids. A shard appears in the queue at most once
//!   (dedup bit) and is worked by at most one worker at a time (running
//!   token). Because each shard's tree serializes under its own lock, this
//!   also yields the per-level merge exclusivity the scheduler promises:
//!   at most one merge per (shard, level) is ever in flight.
//! * **Admission control**: writers that find the sealed-memtable backlog
//!   at [`BackgroundPolicy::max_imm_memtables`] release their shard lock
//!   and block in [`MergeScheduler::wait_for_room`] (emitting
//!   [`Event::Backpressure`]) until a worker drains a memtable. The wait
//!   happens strictly *outside* the tree lock — a stalled writer never
//!   blocks the worker that will unstall it.
//! * **Clean shutdown**: dropping the scheduler (or calling
//!   [`MergeScheduler::drain`]) finishes every queued job before workers
//!   exit, so no sealed memtable is abandoned in memory.
//!
//! The scheduler never holds a tree lock and a scheduler lock at the same
//! time, and requires the same of its callers: wrappers notify/wait only
//! after releasing their shard lock. That single rule is the whole
//! deadlock-freedom argument.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use observe::{Event, Json, SinkHandle};
use parking_lot::{Condvar, Mutex};

use crate::config::BackgroundPolicy;
use crate::error::{LsmError, Result};
use crate::lockorder;

/// Watchdog budget for a hung [`MergeScheduler::drain`] or group-commit
/// rendezvous, in milliseconds. When a wait exceeds it, the waiter panics
/// with the scheduler's job queue in the message (and, when
/// `LSM_WATCHDOG_BUNDLE_DIR` is set, in a post-mortem bundle) — a hang
/// becomes a loud, debuggable failure instead of a stuck process.
static WATCHDOG_MS: AtomicU64 = AtomicU64::new(60_000);

/// Override the hang watchdog (tests use tiny budgets; `0` disables it).
pub fn set_watchdog_timeout_ms(ms: u64) {
    WATCHDOG_MS.store(ms, Ordering::Relaxed);
}

/// The current hang-watchdog budget, if enabled.
pub fn watchdog_timeout() -> Option<Duration> {
    match WATCHDOG_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Convert a hung wait into a panic: writes a post-mortem bundle with the
/// scheduler section when `LSM_WATCHDOG_BUNDLE_DIR` is set, then panics
/// with the job-queue dump inline so the hang is diagnosable either way.
pub(crate) fn watchdog_fire(context: &str, scheduler_section: Json) -> ! {
    let rendered = scheduler_section.render();
    if let Ok(dir) = std::env::var("LSM_WATCHDOG_BUNDLE_DIR") {
        let path = std::path::Path::new(&dir).join("watchdog.postmortem.json");
        let pm = crate::postmortem::PostMortem::new(&format!("watchdog: {context}"))
            .error(&format!("{context} exceeded the hang watchdog"))
            .section("scheduler", scheduler_section);
        if pm.write_to(&path).is_ok() {
            panic!("watchdog: {context} hung (scheduler state in {}): {rendered}", path.display());
        }
    }
    panic!("watchdog: {context} hung; scheduler state: {rendered}");
}

/// A point-in-time dump of a scheduler's job queue — what the post-mortem
/// `scheduler` section and the watchdog panic message are built from.
/// Produced by [`SchedulerBackend::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Shard ids queued for maintenance, in queue order (dedup'd).
    pub queued: Vec<usize>,
    /// Shards a worker is currently stepping (the in-flight jobs).
    pub running: Vec<usize>,
    /// Shards whose running worker will re-enqueue them on finish.
    pub requeue: Vec<usize>,
    /// Sealed-memtable backlog per shard.
    pub backlogs: Vec<usize>,
    /// The admission-control bound writers stall at.
    pub max_imm_memtables: usize,
    /// Worker threads (0 for the simulated executor).
    pub workers: usize,
    /// Whether shutdown has been requested.
    pub shutdown: bool,
    /// The first background maintenance error, if one is pending.
    pub pending_err: Option<String>,
    /// Interleaving steps executed so far (simulated executor only).
    pub sim_steps: Option<u64>,
}

impl SchedulerSnapshot {
    /// Render as the post-mortem `scheduler` section body.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queued", Json::arr(self.queued.iter().map(|&s| Json::from(s)))),
            ("running", Json::arr(self.running.iter().map(|&s| Json::from(s)))),
            ("requeue", Json::arr(self.requeue.iter().map(|&s| Json::from(s)))),
            ("backlogs", Json::arr(self.backlogs.iter().map(|&b| Json::from(b)))),
            ("max_imm_memtables", Json::from(self.max_imm_memtables)),
            ("workers", Json::from(self.workers)),
            ("shutdown", Json::from(self.shutdown)),
            ("pending_err", self.pending_err.as_deref().map(Json::from).unwrap_or(Json::Null)),
            ("sim_steps", self.sim_steps.map(Json::from).unwrap_or(Json::Null)),
        ])
    }
}

/// The scheduling interface the concurrent front-ends program against.
/// Two implementations exist: [`MergeScheduler`] (a real worker pool,
/// production) and [`crate::sim::SimExecutor`] (a single-threaded,
/// seed-driven executor the concurrency-torture harness injects so every
/// interleaving replays exactly from its seed).
pub trait SchedulerBackend: Send + Sync {
    /// Register a maintenance target, returning its shard id.
    fn register(&self, target: Arc<dyn MaintainTarget>) -> usize;

    /// Record `shard`'s backlog and enqueue it (dedup'd) for maintenance.
    /// Callers must NOT hold the shard's tree lock.
    fn notify(&self, shard: usize, backlog: usize);

    /// Block (or, in the simulated executor, run maintenance steps) until
    /// `shard`'s backlog drops below the admission bound. Errors with
    /// [`LsmError::Shutdown`] instead of hanging when the scheduler shuts
    /// down while the backlog is still full. Callers must NOT hold the
    /// shard's tree lock.
    fn wait_for_room(&self, shard: usize) -> Result<()>;

    /// Run every target to quiescence, surfacing the first background
    /// maintenance error.
    fn drain(&self) -> Result<()>;

    /// Take the first background maintenance error, if any.
    fn take_error(&self) -> Option<LsmError>;

    /// The admission-control bound (sealed memtables per shard).
    fn max_imm_memtables(&self) -> usize;

    /// Dump the job queue for post-mortems and watchdog panics.
    fn snapshot(&self) -> SchedulerSnapshot;
}

/// Something the scheduler can run maintenance on — one shard's tree
/// behind its own lock. Implementations hold a [`std::sync::Weak`]
/// reference to the tree so a scheduler outliving its trees degrades to a
/// no-op instead of keeping them alive.
pub trait MaintainTarget: Send + Sync {
    /// Run **one** bounded maintenance step (flush one sealed-memtable
    /// window, or one level merge), acquiring and releasing the tree lock
    /// inside. Returns whether any work was done.
    fn maintenance_step(&self) -> Result<bool>;

    /// Sealed memtables currently queued on the tree (the backpressure
    /// signal).
    fn backlog(&self) -> usize;

    /// Whether any maintenance is pending (sealed memtables or
    /// overflowing levels).
    fn has_pending(&self) -> bool;
}

struct SchedState {
    /// Shard ids with queued work, FIFO.
    queue: VecDeque<usize>,
    /// Dedup bit: shard already sits in `queue`.
    queued: Vec<bool>,
    /// Token: a worker is currently stepping this shard.
    running: Vec<bool>,
    /// A notify arrived while the shard was running *and* a second worker
    /// saw it; the running worker re-enqueues on finish.
    requeue: Vec<bool>,
    /// Registered targets (they hold `Weak` tree refs, so no cycle).
    targets: Vec<Arc<dyn MaintainTarget>>,
    /// Sealed-memtable backlog per shard, mirrored here so backpressure
    /// waits never touch a tree lock while holding the scheduler lock.
    backlogs: Vec<Arc<AtomicUsize>>,
    /// First background maintenance error, surfaced by `drain`.
    pending_err: Option<LsmError>,
}

struct SchedInner {
    state: Mutex<SchedState>,
    /// Workers wait here for jobs.
    work_cv: Condvar,
    /// Backpressured writers wait here for a backlog slot.
    room_cv: Condvar,
    /// `drain` waits here for quiescence.
    idle_cv: Condvar,
    policy: BackgroundPolicy,
    sink: SinkHandle,
    shutdown: AtomicBool,
}

/// A worker pool that drains flush/merge maintenance jobs for one or more
/// shards. Created by the concurrent front-ends when their tree is built
/// with [`Scheduler::Background`](crate::Scheduler); see the module docs
/// for the scheduling rules.
pub struct MergeScheduler {
    inner: Arc<SchedInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl MergeScheduler {
    /// Spawn `policy.workers` (at least one) maintenance workers.
    /// Scheduler events ([`Event::JobStart`], [`Event::Backpressure`])
    /// flow to `sink`.
    ///
    /// Queue delay is derivable from the event stream without a dedicated
    /// span: a front-end's [`Event::FlushEnqueued`] marks a sealed
    /// memtable entering the queue, and the matching [`Event::JobStart`]
    /// (FIFO per shard) marks a worker picking the shard up —
    /// `observe::ExemplarSink` pairs the two into its `queue_delay`
    /// histogram.
    pub fn new(policy: BackgroundPolicy, sink: SinkHandle) -> Self {
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                queued: Vec::new(),
                running: Vec::new(),
                requeue: Vec::new(),
                targets: Vec::new(),
                backlogs: Vec::new(),
                pending_err: None,
            }),
            work_cv: Condvar::new(),
            room_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            policy,
            sink,
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..policy.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || Self::worker_loop(&inner))
            })
            .collect();
        MergeScheduler { inner, workers: Mutex::new(workers) }
    }

    /// The policy this scheduler runs under.
    pub fn policy(&self) -> BackgroundPolicy {
        self.inner.policy
    }

    /// Register a maintenance target, returning its shard id (used in
    /// [`MergeScheduler::notify`] / [`MergeScheduler::wait_for_room`] and
    /// reported in scheduler events).
    pub fn register(&self, target: Arc<dyn MaintainTarget>) -> usize {
        // Probe before taking the state lock (lock-order rule), so
        // `wait_for_room` is honest from the moment of registration.
        let backlog = target.backlog();
        lockorder::assert_no_tree_lock("MergeScheduler::register");
        let mut s = self.inner.state.lock();
        let id = s.targets.len();
        s.targets.push(target);
        s.queued.push(false);
        s.running.push(false);
        s.requeue.push(false);
        s.backlogs.push(Arc::new(AtomicUsize::new(backlog)));
        id
    }

    /// Tell the scheduler `shard` has pending work and a sealed-memtable
    /// backlog of `backlog`. Callers must NOT hold the shard's tree lock.
    pub fn notify(&self, shard: usize, backlog: usize) {
        lockorder::assert_no_tree_lock("MergeScheduler::notify");
        let mut s = self.inner.state.lock();
        s.backlogs[shard].store(backlog, Ordering::Release);
        if !s.queued[shard] {
            s.queued[shard] = true;
            s.queue.push_back(shard);
            self.inner.work_cv.notify_one();
        }
    }

    /// Block until `shard`'s sealed-memtable backlog drops below
    /// [`BackgroundPolicy::max_imm_memtables`]. Emits one
    /// [`Event::Backpressure`] per stall. If the scheduler shuts down
    /// while the backlog is still at the bound, returns
    /// [`LsmError::Shutdown`] — a stalled writer must error out, never
    /// hang on a pool that will not drain. Callers must NOT hold the
    /// shard's tree lock — that lock is exactly what the draining worker
    /// needs.
    pub fn wait_for_room(&self, shard: usize) -> Result<()> {
        lockorder::assert_no_tree_lock("MergeScheduler::wait_for_room");
        let max = self.inner.policy.max_imm_memtables.max(1);
        let mut s = self.inner.state.lock();
        let backlog = s.backlogs[shard].load(Ordering::Acquire);
        if backlog < max {
            return Ok(());
        }
        self.inner.sink.emit_with(|| Event::Backpressure { shard, backlog });
        while s.backlogs[shard].load(Ordering::Acquire) >= max {
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(LsmError::Shutdown(format!(
                    "writer stalled at backlog {} on shard {shard} while the \
                     merge scheduler shut down",
                    s.backlogs[shard].load(Ordering::Acquire)
                )));
            }
            s = self.inner.room_cv.wait(s);
        }
        Ok(())
    }

    /// Wait until every registered target is quiescent (no queued jobs, no
    /// running jobs, nothing pending on any tree), then surface the first
    /// background error if one occurred. Foreground writers should be
    /// paused while draining, or this may lawfully chase a moving target.
    ///
    /// A drain that makes no progress for the [`watchdog_timeout`] budget
    /// panics with the job-queue dump (see [`set_watchdog_timeout_ms`]) —
    /// the hung-rendezvous guardrail.
    pub fn drain(&self) -> Result<()> {
        lockorder::assert_no_tree_lock("MergeScheduler::drain");
        let mut waited = Duration::ZERO;
        loop {
            let targets: Vec<(usize, Arc<dyn MaintainTarget>)> = {
                let s = self.inner.state.lock();
                s.targets.iter().cloned().enumerate().collect()
            };
            // Probe trees outside the scheduler lock (lock-order rule).
            let pending: Vec<usize> =
                targets.iter().filter(|(_, t)| t.has_pending()).map(|(i, _)| *i).collect();
            let mut s = self.inner.state.lock();
            for &shard in &pending {
                if !s.queued[shard] && !s.running[shard] {
                    s.queued[shard] = true;
                    s.queue.push_back(shard);
                    self.inner.work_cv.notify_one();
                }
            }
            let busy = !s.queue.is_empty() || s.running.iter().any(|&r| r);
            if pending.is_empty() && !busy {
                return match s.pending_err.take() {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }
            match watchdog_timeout() {
                None => {
                    let _s = self.inner.idle_cv.wait(s);
                }
                Some(budget) => {
                    let slice = budget.min(Duration::from_millis(50)).max(Duration::from_millis(1));
                    let (s, res) = self.inner.idle_cv.wait_timeout(s, slice);
                    drop(s);
                    waited = if res.timed_out() { waited + slice } else { Duration::ZERO };
                    if waited >= budget {
                        watchdog_fire("MergeScheduler::drain", self.snapshot().to_json());
                    }
                }
            }
        }
    }

    /// Take the first background maintenance error, if any (also surfaced
    /// by [`MergeScheduler::drain`]).
    pub fn take_error(&self) -> Option<LsmError> {
        lockorder::assert_no_tree_lock("MergeScheduler::take_error");
        self.inner.state.lock().pending_err.take()
    }

    /// Dump the job queue (see [`SchedulerSnapshot`]).
    pub fn snapshot(&self) -> SchedulerSnapshot {
        lockorder::assert_no_tree_lock("MergeScheduler::snapshot");
        let s = self.inner.state.lock();
        SchedulerSnapshot {
            queued: s.queue.iter().copied().collect(),
            running: (0..s.running.len()).filter(|&i| s.running[i]).collect(),
            requeue: (0..s.requeue.len()).filter(|&i| s.requeue[i]).collect(),
            backlogs: s.backlogs.iter().map(|b| b.load(Ordering::Acquire)).collect(),
            max_imm_memtables: self.inner.policy.max_imm_memtables.max(1),
            workers: self.inner.policy.workers.max(1),
            shutdown: self.inner.shutdown.load(Ordering::Acquire),
            pending_err: s.pending_err.as_ref().map(ToString::to_string),
            sim_steps: None,
        }
    }

    fn worker_loop(inner: &Arc<SchedInner>) {
        loop {
            // Dequeue one shard (or exit once shut down with an empty
            // queue — shutdown drains, it does not abandon).
            let (shard, target, backlog_cell, depth) = {
                let mut s = inner.state.lock();
                loop {
                    if let Some(shard) = s.queue.pop_front() {
                        s.queued[shard] = false;
                        if s.running[shard] {
                            // Another worker is on this shard; have it
                            // re-enqueue when it finishes.
                            s.requeue[shard] = true;
                            continue;
                        }
                        s.running[shard] = true;
                        let t = Arc::clone(&s.targets[shard]);
                        let b = Arc::clone(&s.backlogs[shard]);
                        break (shard, t, b, s.queue.len());
                    }
                    if inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    s = inner.work_cv.wait(s);
                }
            };
            inner.sink.emit_with(|| Event::JobStart { shard, queued: depth });
            // Step until dry. Each step takes and releases the tree lock
            // internally, so foreground writers interleave freely.
            loop {
                match target.maintenance_step() {
                    Ok(true) => {
                        backlog_cell.store(target.backlog(), Ordering::Release);
                        // Wake backpressured writers after every step —
                        // the first drained memtable frees a slot.
                        let _s = inner.state.lock();
                        inner.room_cv.notify_all();
                    }
                    Ok(false) => break,
                    Err(e) => {
                        let mut s = inner.state.lock();
                        if s.pending_err.is_none() {
                            s.pending_err = Some(e);
                        }
                        break;
                    }
                }
            }
            let mut s = inner.state.lock();
            s.running[shard] = false;
            if s.requeue[shard] {
                s.requeue[shard] = false;
                if !s.queued[shard] {
                    s.queued[shard] = true;
                    s.queue.push_back(shard);
                    inner.work_cv.notify_one();
                }
            }
            inner.room_cv.notify_all();
            inner.idle_cv.notify_all();
        }
    }

    /// Finish every queued job, stop the workers, and join them. Called by
    /// `Drop`; idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _s = self.inner.state.lock();
            self.inner.work_cv.notify_all();
            self.inner.room_cv.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for MergeScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SchedulerBackend for MergeScheduler {
    fn register(&self, target: Arc<dyn MaintainTarget>) -> usize {
        MergeScheduler::register(self, target)
    }

    fn notify(&self, shard: usize, backlog: usize) {
        MergeScheduler::notify(self, shard, backlog);
    }

    fn wait_for_room(&self, shard: usize) -> Result<()> {
        MergeScheduler::wait_for_room(self, shard)
    }

    fn drain(&self) -> Result<()> {
        MergeScheduler::drain(self)
    }

    fn take_error(&self) -> Option<LsmError> {
        MergeScheduler::take_error(self)
    }

    fn max_imm_memtables(&self) -> usize {
        self.inner.policy.max_imm_memtables.max(1)
    }

    fn snapshot(&self) -> SchedulerSnapshot {
        MergeScheduler::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A target with `n` units of fake work, counting steps.
    struct FakeTarget {
        work: AtomicU64,
        steps: AtomicU64,
        backlog: AtomicUsize,
    }

    impl FakeTarget {
        fn with_work(n: u64, backlog: usize) -> Arc<Self> {
            Arc::new(FakeTarget {
                work: AtomicU64::new(n),
                steps: AtomicU64::new(0),
                backlog: AtomicUsize::new(backlog),
            })
        }
    }

    impl MaintainTarget for FakeTarget {
        fn maintenance_step(&self) -> Result<bool> {
            self.steps.fetch_add(1, Ordering::SeqCst);
            let prev = self
                .work
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| Some(w.saturating_sub(1)));
            let did = prev.unwrap() > 0;
            if did && self.work.load(Ordering::SeqCst) == 0 {
                self.backlog.store(0, Ordering::SeqCst);
            }
            Ok(did)
        }
        fn backlog(&self) -> usize {
            self.backlog.load(Ordering::SeqCst)
        }
        fn has_pending(&self) -> bool {
            self.work.load(Ordering::SeqCst) > 0
        }
    }

    #[test]
    fn drain_finishes_all_queued_work() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 3, max_imm_memtables: 4 },
            SinkHandle::none(),
        );
        let targets: Vec<_> = (0..5).map(|_| FakeTarget::with_work(20, 1)).collect();
        for t in &targets {
            let id = sched.register(Arc::clone(t) as Arc<dyn MaintainTarget>);
            sched.notify(id, 1);
        }
        sched.drain().unwrap();
        for t in &targets {
            assert!(!t.has_pending(), "drain left work behind");
        }
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 2, max_imm_memtables: 4 },
            SinkHandle::none(),
        );
        let t = FakeTarget::with_work(50, 2);
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 2);
        drop(sched); // clean shutdown must finish the queued job
        assert!(!t.has_pending(), "shutdown abandoned queued work");
    }

    /// One unit of work behind a gate: the worker blocks mid-job until the
    /// test opens it, giving deterministic stall/release ordering.
    struct GatedTarget {
        open: Mutex<bool>,
        gate_cv: parking_lot::Condvar,
        work: AtomicU64,
    }

    impl MaintainTarget for GatedTarget {
        fn maintenance_step(&self) -> Result<bool> {
            let mut open = self.open.lock();
            while !*open {
                open = self.gate_cv.wait(open);
            }
            Ok(self
                .work
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| Some(w.saturating_sub(1)))
                .unwrap()
                > 0)
        }
        fn backlog(&self) -> usize {
            self.work.load(Ordering::SeqCst) as usize
        }
        fn has_pending(&self) -> bool {
            self.work.load(Ordering::SeqCst) > 0
        }
    }

    #[test]
    fn backpressure_blocks_then_releases_when_backlog_drops() {
        let sched = Arc::new(MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 2 },
            SinkHandle::none(),
        ));
        let t = Arc::new(GatedTarget {
            open: Mutex::new(false),
            gate_cv: parking_lot::Condvar::new(),
            work: AtomicU64::new(3), // backlog 3 ≥ bound 2
        });
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 3); // records the backlog; worker blocks on the gate
        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (sched, released) = (Arc::clone(&sched), Arc::clone(&released));
            std::thread::spawn(move || {
                sched.wait_for_room(id).unwrap();
                released.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!released.load(Ordering::SeqCst), "writer must stall at the backlog bound");
        *t.open.lock() = true; // let the worker drain
        t.gate_cv.notify_all();
        waiter.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
        assert!(t.backlog() < 2);
    }

    /// Satellite contract: a writer stalled at the backlog bound while the
    /// scheduler shuts down must error out, never hang. The gated target
    /// never opens, so the backlog can only drop via... nothing — shutdown
    /// is the writer's only way out.
    #[test]
    fn shutdown_errors_backpressured_writers_instead_of_hanging() {
        let sched = Arc::new(MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 2 },
            SinkHandle::none(),
        ));
        let t = Arc::new(GatedTarget {
            open: Mutex::new(false),
            gate_cv: parking_lot::Condvar::new(),
            work: AtomicU64::new(3),
        });
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 3); // backlog 3 ≥ bound 2; worker blocks on the gate
        let waiter = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.wait_for_room(id))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!waiter.is_finished(), "writer must be stalled before shutdown");
        // Open the gate so shutdown's drain can finish, then shut down:
        // the stalled writer must return promptly with Shutdown.
        sched.inner.shutdown.store(true, Ordering::Release);
        {
            let _s = sched.inner.state.lock();
            sched.inner.room_cv.notify_all();
        }
        let res = waiter.join().unwrap();
        assert!(
            matches!(res, Err(LsmError::Shutdown(_))),
            "stalled writer must surface Shutdown, got {res:?}"
        );
        *t.open.lock() = true; // unblock the worker so Drop can join it
        t.gate_cv.notify_all();
    }

    #[test]
    fn snapshot_reports_queue_and_backlogs() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 3 },
            SinkHandle::none(),
        );
        let t = Arc::new(GatedTarget {
            open: Mutex::new(false),
            gate_cv: parking_lot::Condvar::new(),
            work: AtomicU64::new(2),
        });
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 2);
        // Give the worker a moment to pick the job up (it blocks mid-step).
        std::thread::sleep(std::time::Duration::from_millis(30));
        let snap = sched.snapshot();
        assert_eq!(snap.backlogs, vec![2]);
        assert_eq!(snap.max_imm_memtables, 3);
        assert_eq!(snap.workers, 1);
        assert!(!snap.shutdown);
        assert_eq!(snap.running, vec![id], "the gated job must show as in flight");
        assert_eq!(snap.sim_steps, None);
        // The JSON section carries every key the bundle validator checks.
        let Json::Obj(pairs) = snap.to_json() else { panic!("snapshot not an object") };
        for key in ["queued", "running", "backlogs", "max_imm_memtables", "shutdown"] {
            assert!(pairs.iter().any(|(k, _)| k == key), "snapshot JSON missing {key}");
        }
        *t.open.lock() = true;
        t.gate_cv.notify_all();
        sched.drain().unwrap();
    }

    /// The drain watchdog turns a hang into a panic that names the
    /// scheduler state. The gated worker never finishes its job, so drain
    /// can never complete; with a tiny budget the panic must fire fast.
    #[test]
    fn drain_watchdog_panics_on_a_hung_job() {
        let sched = Arc::new(MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 2 },
            SinkHandle::none(),
        ));
        let t = Arc::new(GatedTarget {
            open: Mutex::new(false),
            gate_cv: parking_lot::Condvar::new(),
            work: AtomicU64::new(1),
        });
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 1);
        set_watchdog_timeout_ms(100);
        let caught = {
            let sched = Arc::clone(&sched);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || sched.drain()))
        };
        set_watchdog_timeout_ms(60_000);
        let msg = match caught {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                .unwrap_or_default(),
            Ok(r) => panic!("drain must not return from a hung job, got {r:?}"),
        };
        assert!(msg.contains("watchdog"), "panic names the watchdog: {msg}");
        assert!(msg.contains("running"), "panic dumps the job queue: {msg}");
        // Unblock the worker and leak the scheduler: Drop would join the
        // worker thread, which is only now finishing.
        *t.open.lock() = true;
        t.gate_cv.notify_all();
        sched.drain().unwrap();
    }

    #[test]
    fn dedup_keeps_one_queue_entry_per_shard() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 4 },
            SinkHandle::none(),
        );
        let t = FakeTarget::with_work(5, 1);
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        for _ in 0..100 {
            sched.notify(id, 1);
        }
        sched.drain().unwrap();
        // 5 productive steps + a bounded number of empty probes — far
        // fewer than the 100 notifies if dedup works.
        assert!(t.steps.load(Ordering::SeqCst) < 20);
    }
}
