//! Background merge scheduler: flush/merge maintenance as worker-pool jobs.
//!
//! The paper's partial, block-preserving merges make each maintenance step
//! cheap (Theorem 2 bounds a `ChooseBest` merge at δ(1/Γ+1)·K_i blocks);
//! this module is what makes that cheapness visible in foreground tail
//! latency instead of only in write amplification. With
//! [`Scheduler::Background`](crate::Scheduler) a `put` that fills the
//! memtable *seals* it — swaps in a fresh one and queues the immutable one
//! — and returns; the actual flush and any cascade of level merges run
//! here, one bounded [`LsmTree::maintenance_step`](crate::LsmTree) per
//! tree-lock acquisition so writers interleave between steps.
//!
//! Mechanics:
//!
//! * **Jobs** are shard ids. A shard appears in the queue at most once
//!   (dedup bit) and is worked by at most one worker at a time (running
//!   token). Because each shard's tree serializes under its own lock, this
//!   also yields the per-level merge exclusivity the scheduler promises:
//!   at most one merge per (shard, level) is ever in flight.
//! * **Admission control**: writers that find the sealed-memtable backlog
//!   at [`BackgroundPolicy::max_imm_memtables`] release their shard lock
//!   and block in [`MergeScheduler::wait_for_room`] (emitting
//!   [`Event::Backpressure`]) until a worker drains a memtable. The wait
//!   happens strictly *outside* the tree lock — a stalled writer never
//!   blocks the worker that will unstall it.
//! * **Clean shutdown**: dropping the scheduler (or calling
//!   [`MergeScheduler::drain`]) finishes every queued job before workers
//!   exit, so no sealed memtable is abandoned in memory.
//!
//! The scheduler never holds a tree lock and a scheduler lock at the same
//! time, and requires the same of its callers: wrappers notify/wait only
//! after releasing their shard lock. That single rule is the whole
//! deadlock-freedom argument.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use observe::{Event, SinkHandle};
use parking_lot::{Condvar, Mutex};

use crate::config::BackgroundPolicy;
use crate::error::{LsmError, Result};

/// Something the scheduler can run maintenance on — one shard's tree
/// behind its own lock. Implementations hold a [`std::sync::Weak`]
/// reference to the tree so a scheduler outliving its trees degrades to a
/// no-op instead of keeping them alive.
pub trait MaintainTarget: Send + Sync {
    /// Run **one** bounded maintenance step (flush one sealed-memtable
    /// window, or one level merge), acquiring and releasing the tree lock
    /// inside. Returns whether any work was done.
    fn maintenance_step(&self) -> Result<bool>;

    /// Sealed memtables currently queued on the tree (the backpressure
    /// signal).
    fn backlog(&self) -> usize;

    /// Whether any maintenance is pending (sealed memtables or
    /// overflowing levels).
    fn has_pending(&self) -> bool;
}

struct SchedState {
    /// Shard ids with queued work, FIFO.
    queue: VecDeque<usize>,
    /// Dedup bit: shard already sits in `queue`.
    queued: Vec<bool>,
    /// Token: a worker is currently stepping this shard.
    running: Vec<bool>,
    /// A notify arrived while the shard was running *and* a second worker
    /// saw it; the running worker re-enqueues on finish.
    requeue: Vec<bool>,
    /// Registered targets (they hold `Weak` tree refs, so no cycle).
    targets: Vec<Arc<dyn MaintainTarget>>,
    /// Sealed-memtable backlog per shard, mirrored here so backpressure
    /// waits never touch a tree lock while holding the scheduler lock.
    backlogs: Vec<Arc<AtomicUsize>>,
    /// First background maintenance error, surfaced by `drain`.
    pending_err: Option<LsmError>,
}

struct SchedInner {
    state: Mutex<SchedState>,
    /// Workers wait here for jobs.
    work_cv: Condvar,
    /// Backpressured writers wait here for a backlog slot.
    room_cv: Condvar,
    /// `drain` waits here for quiescence.
    idle_cv: Condvar,
    policy: BackgroundPolicy,
    sink: SinkHandle,
    shutdown: AtomicBool,
}

/// A worker pool that drains flush/merge maintenance jobs for one or more
/// shards. Created by the concurrent front-ends when their tree is built
/// with [`Scheduler::Background`](crate::Scheduler); see the module docs
/// for the scheduling rules.
pub struct MergeScheduler {
    inner: Arc<SchedInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl MergeScheduler {
    /// Spawn `policy.workers` (at least one) maintenance workers.
    /// Scheduler events ([`Event::JobStart`], [`Event::Backpressure`])
    /// flow to `sink`.
    pub fn new(policy: BackgroundPolicy, sink: SinkHandle) -> Self {
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                queued: Vec::new(),
                running: Vec::new(),
                requeue: Vec::new(),
                targets: Vec::new(),
                backlogs: Vec::new(),
                pending_err: None,
            }),
            work_cv: Condvar::new(),
            room_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            policy,
            sink,
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..policy.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || Self::worker_loop(&inner))
            })
            .collect();
        MergeScheduler { inner, workers: Mutex::new(workers) }
    }

    /// The policy this scheduler runs under.
    pub fn policy(&self) -> BackgroundPolicy {
        self.inner.policy
    }

    /// Register a maintenance target, returning its shard id (used in
    /// [`MergeScheduler::notify`] / [`MergeScheduler::wait_for_room`] and
    /// reported in scheduler events).
    pub fn register(&self, target: Arc<dyn MaintainTarget>) -> usize {
        // Probe before taking the state lock (lock-order rule), so
        // `wait_for_room` is honest from the moment of registration.
        let backlog = target.backlog();
        let mut s = self.inner.state.lock();
        let id = s.targets.len();
        s.targets.push(target);
        s.queued.push(false);
        s.running.push(false);
        s.requeue.push(false);
        s.backlogs.push(Arc::new(AtomicUsize::new(backlog)));
        id
    }

    /// Tell the scheduler `shard` has pending work and a sealed-memtable
    /// backlog of `backlog`. Callers must NOT hold the shard's tree lock.
    pub fn notify(&self, shard: usize, backlog: usize) {
        let mut s = self.inner.state.lock();
        s.backlogs[shard].store(backlog, Ordering::Release);
        if !s.queued[shard] {
            s.queued[shard] = true;
            s.queue.push_back(shard);
            self.inner.work_cv.notify_one();
        }
    }

    /// Block until `shard`'s sealed-memtable backlog drops below
    /// [`BackgroundPolicy::max_imm_memtables`] (or the scheduler shuts
    /// down). Emits one [`Event::Backpressure`] per stall. Callers must
    /// NOT hold the shard's tree lock — that lock is exactly what the
    /// draining worker needs.
    pub fn wait_for_room(&self, shard: usize) {
        let max = self.inner.policy.max_imm_memtables.max(1);
        let mut s = self.inner.state.lock();
        let backlog = s.backlogs[shard].load(Ordering::Acquire);
        if backlog < max {
            return;
        }
        self.inner.sink.emit_with(|| Event::Backpressure { shard, backlog });
        while s.backlogs[shard].load(Ordering::Acquire) >= max
            && !self.inner.shutdown.load(Ordering::Acquire)
        {
            s = self.inner.room_cv.wait(s);
        }
    }

    /// Wait until every registered target is quiescent (no queued jobs, no
    /// running jobs, nothing pending on any tree), then surface the first
    /// background error if one occurred. Foreground writers should be
    /// paused while draining, or this may lawfully chase a moving target.
    pub fn drain(&self) -> Result<()> {
        loop {
            let targets: Vec<(usize, Arc<dyn MaintainTarget>)> = {
                let s = self.inner.state.lock();
                s.targets.iter().cloned().enumerate().collect()
            };
            // Probe trees outside the scheduler lock (lock-order rule).
            let pending: Vec<usize> =
                targets.iter().filter(|(_, t)| t.has_pending()).map(|(i, _)| *i).collect();
            let mut s = self.inner.state.lock();
            for &shard in &pending {
                if !s.queued[shard] && !s.running[shard] {
                    s.queued[shard] = true;
                    s.queue.push_back(shard);
                    self.inner.work_cv.notify_one();
                }
            }
            let busy = !s.queue.is_empty() || s.running.iter().any(|&r| r);
            if pending.is_empty() && !busy {
                return match s.pending_err.take() {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }
            let _s = self.inner.idle_cv.wait(s);
        }
    }

    /// Take the first background maintenance error, if any (also surfaced
    /// by [`MergeScheduler::drain`]).
    pub fn take_error(&self) -> Option<LsmError> {
        self.inner.state.lock().pending_err.take()
    }

    fn worker_loop(inner: &Arc<SchedInner>) {
        loop {
            // Dequeue one shard (or exit once shut down with an empty
            // queue — shutdown drains, it does not abandon).
            let (shard, target, backlog_cell, depth) = {
                let mut s = inner.state.lock();
                loop {
                    if let Some(shard) = s.queue.pop_front() {
                        s.queued[shard] = false;
                        if s.running[shard] {
                            // Another worker is on this shard; have it
                            // re-enqueue when it finishes.
                            s.requeue[shard] = true;
                            continue;
                        }
                        s.running[shard] = true;
                        let t = Arc::clone(&s.targets[shard]);
                        let b = Arc::clone(&s.backlogs[shard]);
                        break (shard, t, b, s.queue.len());
                    }
                    if inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    s = inner.work_cv.wait(s);
                }
            };
            inner.sink.emit_with(|| Event::JobStart { shard, queued: depth });
            // Step until dry. Each step takes and releases the tree lock
            // internally, so foreground writers interleave freely.
            loop {
                match target.maintenance_step() {
                    Ok(true) => {
                        backlog_cell.store(target.backlog(), Ordering::Release);
                        // Wake backpressured writers after every step —
                        // the first drained memtable frees a slot.
                        let _s = inner.state.lock();
                        inner.room_cv.notify_all();
                    }
                    Ok(false) => break,
                    Err(e) => {
                        let mut s = inner.state.lock();
                        if s.pending_err.is_none() {
                            s.pending_err = Some(e);
                        }
                        break;
                    }
                }
            }
            let mut s = inner.state.lock();
            s.running[shard] = false;
            if s.requeue[shard] {
                s.requeue[shard] = false;
                if !s.queued[shard] {
                    s.queued[shard] = true;
                    s.queue.push_back(shard);
                    inner.work_cv.notify_one();
                }
            }
            inner.room_cv.notify_all();
            inner.idle_cv.notify_all();
        }
    }

    /// Finish every queued job, stop the workers, and join them. Called by
    /// `Drop`; idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _s = self.inner.state.lock();
            self.inner.work_cv.notify_all();
            self.inner.room_cv.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for MergeScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A target with `n` units of fake work, counting steps.
    struct FakeTarget {
        work: AtomicU64,
        steps: AtomicU64,
        backlog: AtomicUsize,
    }

    impl FakeTarget {
        fn with_work(n: u64, backlog: usize) -> Arc<Self> {
            Arc::new(FakeTarget {
                work: AtomicU64::new(n),
                steps: AtomicU64::new(0),
                backlog: AtomicUsize::new(backlog),
            })
        }
    }

    impl MaintainTarget for FakeTarget {
        fn maintenance_step(&self) -> Result<bool> {
            self.steps.fetch_add(1, Ordering::SeqCst);
            let prev = self
                .work
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| Some(w.saturating_sub(1)));
            let did = prev.unwrap() > 0;
            if did && self.work.load(Ordering::SeqCst) == 0 {
                self.backlog.store(0, Ordering::SeqCst);
            }
            Ok(did)
        }
        fn backlog(&self) -> usize {
            self.backlog.load(Ordering::SeqCst)
        }
        fn has_pending(&self) -> bool {
            self.work.load(Ordering::SeqCst) > 0
        }
    }

    #[test]
    fn drain_finishes_all_queued_work() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 3, max_imm_memtables: 4 },
            SinkHandle::none(),
        );
        let targets: Vec<_> = (0..5).map(|_| FakeTarget::with_work(20, 1)).collect();
        for t in &targets {
            let id = sched.register(Arc::clone(t) as Arc<dyn MaintainTarget>);
            sched.notify(id, 1);
        }
        sched.drain().unwrap();
        for t in &targets {
            assert!(!t.has_pending(), "drain left work behind");
        }
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 2, max_imm_memtables: 4 },
            SinkHandle::none(),
        );
        let t = FakeTarget::with_work(50, 2);
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 2);
        drop(sched); // clean shutdown must finish the queued job
        assert!(!t.has_pending(), "shutdown abandoned queued work");
    }

    /// One unit of work behind a gate: the worker blocks mid-job until the
    /// test opens it, giving deterministic stall/release ordering.
    struct GatedTarget {
        open: Mutex<bool>,
        gate_cv: parking_lot::Condvar,
        work: AtomicU64,
    }

    impl MaintainTarget for GatedTarget {
        fn maintenance_step(&self) -> Result<bool> {
            let mut open = self.open.lock();
            while !*open {
                open = self.gate_cv.wait(open);
            }
            Ok(self
                .work
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| Some(w.saturating_sub(1)))
                .unwrap()
                > 0)
        }
        fn backlog(&self) -> usize {
            self.work.load(Ordering::SeqCst) as usize
        }
        fn has_pending(&self) -> bool {
            self.work.load(Ordering::SeqCst) > 0
        }
    }

    #[test]
    fn backpressure_blocks_then_releases_when_backlog_drops() {
        let sched = Arc::new(MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 2 },
            SinkHandle::none(),
        ));
        let t = Arc::new(GatedTarget {
            open: Mutex::new(false),
            gate_cv: parking_lot::Condvar::new(),
            work: AtomicU64::new(3), // backlog 3 ≥ bound 2
        });
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sched.notify(id, 3); // records the backlog; worker blocks on the gate
        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (sched, released) = (Arc::clone(&sched), Arc::clone(&released));
            std::thread::spawn(move || {
                sched.wait_for_room(id);
                released.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!released.load(Ordering::SeqCst), "writer must stall at the backlog bound");
        *t.open.lock() = true; // let the worker drain
        t.gate_cv.notify_all();
        waiter.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
        assert!(t.backlog() < 2);
    }

    #[test]
    fn dedup_keeps_one_queue_entry_per_shard() {
        let sched = MergeScheduler::new(
            BackgroundPolicy { workers: 1, max_imm_memtables: 4 },
            SinkHandle::none(),
        );
        let t = FakeTarget::with_work(5, 1);
        let id = sched.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        for _ in 0..100 {
            sched.notify(id, 1);
        }
        sched.drain().unwrap();
        // 5 productive steps + a bounded number of empty probes — far
        // fewer than the 100 notifies if dedup works.
        assert!(t.steps.load(Ordering::SeqCst) < 20);
    }
}
