//! The tree's private view of the storage substrate: allocation + codec +
//! caching in one place.
//!
//! Every data-block write in the whole index funnels through
//! [`Store::write_block`], so the device's write counter is exactly the
//! paper's cost metric.

use std::sync::Arc;

use parking_lot::Mutex;

use sim_ssd::{BlockAllocator, BlockDevice, LruCache, MemDevice};

use crate::block::{BlockHandle, DataBlock};
use crate::bloom::BloomFilter;
use crate::error::Result;
use crate::record::Record;

/// Storage services for one LSM index.
pub struct Store {
    device: Arc<dyn BlockDevice>,
    alloc: BlockAllocator,
    cache: Mutex<LruCache<sim_ssd::BlockId, Arc<DataBlock>>>,
    bloom_bits_per_key: usize,
}

impl Store {
    /// Wrap a device. `cache_blocks` is the LRU capacity in blocks;
    /// `bloom_bits_per_key == 0` disables per-block Bloom filters.
    pub fn new(
        device: Arc<dyn BlockDevice>,
        cache_blocks: usize,
        bloom_bits_per_key: usize,
    ) -> Self {
        let capacity = device.capacity();
        Store {
            device,
            alloc: BlockAllocator::new(capacity),
            cache: Mutex::new(LruCache::new(cache_blocks.max(1))),
            bloom_bits_per_key,
        }
    }

    /// Convenience constructor: in-memory device of `capacity_blocks`.
    pub fn in_memory(capacity_blocks: u64, block_size: usize, cache_blocks: usize) -> Self {
        let dev = Arc::new(MemDevice::with_block_size(capacity_blocks, block_size));
        Store::new(dev, cache_blocks, 0)
    }

    /// Attach to a device whose `used` block ids already hold live data
    /// (recovery from a manifest).
    pub fn with_allocated<I: IntoIterator<Item = u64>>(
        device: Arc<dyn BlockDevice>,
        cache_blocks: usize,
        bloom_bits_per_key: usize,
        used: I,
    ) -> Self {
        let capacity = device.capacity();
        Store {
            device,
            alloc: BlockAllocator::with_allocated(capacity, used),
            cache: Mutex::new(LruCache::new(cache_blocks.max(1))),
            bloom_bits_per_key,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    /// Register an event sink on the storage layers: the buffer cache
    /// reports hits/misses/evictions and the device reports reads, writes,
    /// trims and syncs, all into the same sink.
    pub fn set_sink(&self, sink: observe::SinkHandle) {
        self.device.set_sink(sink.clone());
        self.cache.lock().set_sink(sink);
    }

    /// Allocate, encode, and write a new data block; returns its fence
    /// entry. Exactly one device write.
    pub fn write_block(&self, records: Vec<Record>) -> Result<BlockHandle> {
        debug_assert!(!records.is_empty(), "refusing to write an empty data block");
        let block = DataBlock::new(records);
        let frame = block.encode(self.device.block_size())?;
        let id = self.alloc.alloc()?;
        if let Err(e) = self.device.write(id, &frame) {
            self.alloc.free(id);
            return Err(e.into());
        }
        let bloom = if self.bloom_bits_per_key > 0 {
            let keys: Vec<u64> = block.records.iter().map(|r| r.key).collect();
            Some(Arc::new(BloomFilter::build(&keys, self.bloom_bits_per_key)))
        } else {
            None
        };
        let handle = BlockHandle::describe(id, &block, bloom);
        self.cache.lock().insert(id, Arc::new(block));
        Ok(handle)
    }

    /// Read a block through the cache.
    pub fn read_block(&self, handle: &BlockHandle) -> Result<Arc<DataBlock>> {
        if let Some(hit) = self.cache.lock().get(&handle.id) {
            return Ok(hit);
        }
        let frame = self.device.read(handle.id)?;
        let block = Arc::new(DataBlock::decode(&frame)?);
        self.cache.lock().insert(handle.id, Arc::clone(&block));
        Ok(block)
    }

    /// Release a block: TRIM on the device, id back to the allocator,
    /// cached copy dropped.
    pub fn free_block(&self, handle: &BlockHandle) -> Result<()> {
        self.cache.lock().remove(&handle.id);
        self.device.trim(handle.id)?;
        self.alloc.free(handle.id);
        Ok(())
    }

    /// Device I/O counters (reads/writes/trims so far).
    pub fn io_snapshot(&self) -> sim_ssd::IoSnapshot {
        self.device.io_snapshot()
    }

    /// Buffer-cache statistics.
    pub fn cache_stats(&self) -> sim_ssd::cache::CacheStats {
        self.cache.lock().stats()
    }

    /// Blocks currently allocated to the index.
    pub fn live_blocks(&self) -> u64 {
        self.alloc.live_blocks()
    }

    /// Blocks still available on the device.
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn store() -> Store {
        Store::in_memory(64, 256, 8)
    }

    fn recs(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::put(k, vec![k as u8; 4])).collect()
    }

    #[test]
    fn write_read_free_cycle() {
        let s = store();
        let h = s.write_block(recs(&[1, 5, 9])).unwrap();
        assert_eq!((h.min, h.max, h.count), (1, 9, 3));
        let b = s.read_block(&h).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(s.live_blocks(), 1);
        s.free_block(&h).unwrap();
        assert_eq!(s.live_blocks(), 0);
        let io = s.io_snapshot();
        assert_eq!((io.writes, io.trims), (1, 1));
    }

    #[test]
    fn reads_served_from_cache_do_not_touch_device() {
        let s = store();
        let h = s.write_block(recs(&[1, 2])).unwrap();
        for _ in 0..5 {
            s.read_block(&h).unwrap();
        }
        // write_block seeds the cache, so no device read at all.
        assert_eq!(s.io_snapshot().reads, 0);
        assert!(s.cache_stats().hits >= 5);
    }

    #[test]
    fn cache_miss_goes_to_device() {
        let dev = Arc::new(MemDevice::with_block_size(64, 256));
        let s = Store::new(dev, 1, 0); // cache of one block
        let h1 = s.write_block(recs(&[1])).unwrap();
        let _h2 = s.write_block(recs(&[2])).unwrap(); // evicts h1
        s.read_block(&h1).unwrap();
        assert_eq!(s.io_snapshot().reads, 1);
    }

    #[test]
    fn bloom_built_when_enabled() {
        let dev = Arc::new(MemDevice::with_block_size(64, 256));
        let s = Store::new(dev, 8, 10);
        let h = s.write_block(recs(&[10, 20])).unwrap();
        let bloom = h.bloom.as_ref().expect("bloom enabled");
        assert!(bloom.may_contain(10));
        assert!(bloom.may_contain(20));
    }

    #[test]
    fn bloom_skipped_when_disabled() {
        let s = Store::in_memory(16, 256, 4);
        let h = s.write_block(recs(&[1])).unwrap();
        assert!(h.bloom.is_none());
    }

    #[test]
    fn failed_write_releases_the_block_id() {
        let dev = Arc::new(MemDevice::with_block_size(8, 256));
        let s = Store::new(Arc::clone(&dev) as Arc<dyn BlockDevice>, 4, 0);
        dev.inject_write_failure_in(1);
        assert!(s.write_block(recs(&[1])).is_err());
        assert_eq!(s.live_blocks(), 0);
        // And the id is reusable afterwards.
        let h = s.write_block(recs(&[1])).unwrap();
        assert_eq!(h.count, 1);
    }
}
