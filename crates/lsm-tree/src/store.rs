//! The tree's private view of the storage substrate: allocation + codec +
//! caching in one place.
//!
//! Every data-block write in the whole index funnels through
//! [`Store::write_block`], so the device's write counter is exactly the
//! paper's cost metric.
//!
//! The store is also where device failures are absorbed:
//!
//! * **Transient errors** ([`sim_ssd::DeviceError::is_transient`]) are
//!   retried with bounded exponential backoff ([`RetryPolicy`]); each retry
//!   emits [`observe::Event::RetryAttempt`].
//! * **Corruption** (device-level ECC [`sim_ssd::DeviceError::Corrupt`] or
//!   a block-checksum mismatch caught by the codec) quarantines the block:
//!   its id is never freed or reused, the failure surfaces as
//!   [`LsmError::Degraded`] naming the lost key range, and a later merge
//!   drops the block from its level (*read repair*).
//! * **Checkpoint-referenced blocks are never trimmed early**: blocks the
//!   last durable manifest references stay protected — a logical free is
//!   deferred until the next manifest rename succeeds, so a power cut
//!   between a device sync and the manifest rename can always recover from
//!   the old manifest.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

use observe::{Event, SinkCell};
use parking_lot::Mutex;

use sim_ssd::{BlockAllocator, BlockDevice, BlockId, LruCache, MemDevice};

use crate::block::{BlockHandle, DataBlock};
use crate::bloom::BloomFilter;
use crate::error::{LsmError, Result};
use crate::record::{Key, Record};

/// Bounded retry-with-backoff for transient device errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `base_backoff_us << (n-1)`
    /// microseconds. Zero disables sleeping (tests).
    pub base_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff_us: 50 }
    }
}

impl RetryPolicy {
    /// No retries at all: every device error surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_backoff_us: 0 }
    }
}

/// Storage services for one LSM index.
pub struct Store {
    device: Arc<dyn BlockDevice>,
    alloc: BlockAllocator,
    cache: Mutex<LruCache<sim_ssd::BlockId, Arc<DataBlock>>>,
    bloom_bits_per_key: usize,
    retry: RetryPolicy,
    /// Blocks that failed an integrity check: id → lost key range. Their
    /// ids are never freed or reused.
    quarantined: Mutex<BTreeMap<u64, (Key, Key)>>,
    /// Quarantined blocks a merge has since dropped from the structure.
    repaired: Mutex<BTreeSet<u64>>,
    /// Blocks referenced by the last durable manifest: trims deferred.
    protected: Mutex<HashSet<u64>>,
    /// Logically freed blocks waiting for the next checkpoint to trim.
    deferred_free: Mutex<Vec<BlockId>>,
    sink: SinkCell,
}

impl Store {
    /// Wrap a device. `cache_blocks` is the LRU capacity in blocks;
    /// `bloom_bits_per_key == 0` disables per-block Bloom filters.
    pub fn new(
        device: Arc<dyn BlockDevice>,
        cache_blocks: usize,
        bloom_bits_per_key: usize,
    ) -> Self {
        let capacity = device.capacity();
        let alloc = BlockAllocator::new(capacity);
        Self::assemble_parts(device, alloc, cache_blocks, bloom_bits_per_key, HashSet::new())
    }

    /// Convenience constructor: in-memory device of `capacity_blocks`.
    pub fn in_memory(capacity_blocks: u64, block_size: usize, cache_blocks: usize) -> Self {
        let dev = Arc::new(MemDevice::with_block_size(capacity_blocks, block_size));
        Store::new(dev, cache_blocks, 0)
    }

    /// Attach to a device whose `used` block ids already hold live data
    /// (recovery from a manifest). The used blocks start out protected —
    /// they are what the durable manifest references.
    pub fn with_allocated<I: IntoIterator<Item = u64>>(
        device: Arc<dyn BlockDevice>,
        cache_blocks: usize,
        bloom_bits_per_key: usize,
        used: I,
    ) -> Self {
        let capacity = device.capacity();
        let used: Vec<u64> = used.into_iter().collect();
        let protected: HashSet<u64> = used.iter().copied().collect();
        let alloc = BlockAllocator::with_allocated(capacity, used);
        Self::assemble_parts(device, alloc, cache_blocks, bloom_bits_per_key, protected)
    }

    fn assemble_parts(
        device: Arc<dyn BlockDevice>,
        alloc: BlockAllocator,
        cache_blocks: usize,
        bloom_bits_per_key: usize,
        protected: HashSet<u64>,
    ) -> Self {
        Store {
            device,
            alloc,
            cache: Mutex::new(LruCache::new(cache_blocks.max(1))),
            bloom_bits_per_key,
            retry: RetryPolicy::default(),
            quarantined: Mutex::new(BTreeMap::new()),
            repaired: Mutex::new(BTreeSet::new()),
            protected: Mutex::new(protected),
            deferred_free: Mutex::new(Vec::new()),
            sink: SinkCell::new(),
        }
    }

    /// Replace the transient-error retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    /// Register an event sink on the storage layers: the buffer cache
    /// reports hits/misses/evictions, the device reports reads, writes,
    /// trims and syncs, and the store itself reports retries, quarantines
    /// and read repairs, all into the same sink.
    pub fn set_sink(&self, sink: observe::SinkHandle) {
        self.device.set_sink(sink.clone());
        self.cache.lock().set_sink(sink.clone());
        self.sink.set(sink);
    }

    /// Run `op`, retrying transient device errors per the [`RetryPolicy`].
    fn with_retries<T>(&self, mut op: impl FnMut() -> sim_ssd::Result<T>) -> sim_ssd::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < self.retry.max_attempts => {
                    attempt += 1;
                    self.sink.emit_with(|| Event::RetryAttempt { attempt });
                    if self.retry.base_backoff_us > 0 {
                        let us = self.retry.base_backoff_us << (attempt - 1).min(16);
                        std::thread::sleep(std::time::Duration::from_micros(us));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Allocate, encode, and write a new data block; returns its fence
    /// entry. Exactly one device write when no fault fires; transient write
    /// errors are retried against the *same* block id, so the physical
    /// layout of a faulty-but-recovered run matches the fault-free run.
    pub fn write_block(&self, records: Vec<Record>) -> Result<BlockHandle> {
        debug_assert!(!records.is_empty(), "refusing to write an empty data block");
        let block = DataBlock::new(records);
        let frame = block.encode(self.device.block_size())?;
        let id = self.alloc.alloc()?;
        if let Err(e) = self.with_retries(|| self.device.write(id, &frame)) {
            self.alloc.free(id);
            return Err(e.into());
        }
        let bloom = if self.bloom_bits_per_key > 0 {
            let keys: Vec<u64> = block.records.iter().map(|r| r.key).collect();
            Some(Arc::new(BloomFilter::build(&keys, self.bloom_bits_per_key)))
        } else {
            None
        };
        let handle = BlockHandle::describe(id, &block, bloom);
        self.cache.lock().insert(id, Arc::new(block));
        Ok(handle)
    }

    /// Read a block through the cache. Transient device errors are retried;
    /// corruption (device ECC or codec checksum) quarantines the block and
    /// surfaces as [`LsmError::Degraded`] naming the lost key range.
    pub fn read_block(&self, handle: &BlockHandle) -> Result<Arc<DataBlock>> {
        if let Some(hit) = self.cache.lock().get(&handle.id) {
            return Ok(hit);
        }
        let frame = match self.with_retries(|| self.device.read(handle.id)) {
            Ok(frame) => frame,
            Err(sim_ssd::DeviceError::Corrupt(_)) => return Err(self.quarantine(handle)),
            Err(e) => return Err(e.into()),
        };
        let block = match DataBlock::decode(&frame) {
            Ok(b) => Arc::new(b),
            Err(LsmError::Codec(_)) => return Err(self.quarantine(handle)),
            Err(e) => return Err(e),
        };
        self.cache.lock().insert(handle.id, Arc::clone(&block));
        Ok(block)
    }

    /// Continue a retry ladder whose first attempt (made through a batched
    /// device call) already failed with `first`. Mirrors [`with_retries`]
    /// exactly — same attempt budget, same events, same backoff — with the
    /// initial attempt accounted to the batch.
    ///
    /// [`with_retries`]: Store::with_retries
    fn finish_read_retries(
        &self,
        id: BlockId,
        first: sim_ssd::DeviceError,
    ) -> sim_ssd::Result<bytes::Bytes> {
        let mut attempt = 0u32;
        let mut err = first;
        loop {
            if !err.is_transient() || attempt + 1 >= self.retry.max_attempts {
                return Err(err);
            }
            attempt += 1;
            self.sink.emit_with(|| Event::RetryAttempt { attempt });
            if self.retry.base_backoff_us > 0 {
                let us = self.retry.base_backoff_us << (attempt - 1).min(16);
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
            match self.device.read(id) {
                Ok(frame) => return Ok(frame),
                Err(e) => err = e,
            }
        }
    }

    /// Write-side twin of [`finish_read_retries`](Store::finish_read_retries).
    fn finish_write_retries(
        &self,
        id: BlockId,
        frame: &[u8],
        first: sim_ssd::DeviceError,
    ) -> sim_ssd::Result<()> {
        let mut attempt = 0u32;
        let mut err = first;
        loop {
            if !err.is_transient() || attempt + 1 >= self.retry.max_attempts {
                return Err(err);
            }
            attempt += 1;
            self.sink.emit_with(|| Event::RetryAttempt { attempt });
            if self.retry.base_backoff_us > 0 {
                let us = self.retry.base_backoff_us << (attempt - 1).min(16);
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
            match self.device.write(id, frame) {
                Ok(()) => return Ok(()),
                Err(e) => err = e,
            }
        }
    }

    /// Batched [`read_block`]: fetch several blocks with (at most) one
    /// coalesced device call for all cache misses, returning one result
    /// per handle, in order.
    ///
    /// Per-block semantics are identical to calling `read_block` in a
    /// loop — cache hits and insertions, transient-error retries,
    /// corruption quarantine, `Degraded` errors — only the number of
    /// device calls (and on `FileDevice`, syscalls) shrinks.
    ///
    /// [`read_block`]: Store::read_block
    pub fn read_blocks(&self, handles: &[BlockHandle]) -> Vec<Result<Arc<DataBlock>>> {
        let mut out: Vec<Option<Result<Arc<DataBlock>>>> = Vec::with_capacity(handles.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock();
            for (i, h) in handles.iter().enumerate() {
                match cache.get(&h.id) {
                    Some(hit) => out.push(Some(Ok(hit))),
                    None => {
                        out.push(None);
                        miss_idx.push(i);
                    }
                }
            }
        }
        if !miss_idx.is_empty() {
            // Reads within a batch are mutually unordered, so issue the
            // misses to the device sorted by id: handles arrive in key
            // order, but physical adjacency (what `read_many` coalesces)
            // follows allocation order, which key order scrambles.
            miss_idx.sort_by_key(|&i| handles[i].id.raw());
            let ids: Vec<BlockId> = miss_idx.iter().map(|&i| handles[i].id).collect();
            let frames = self.device.read_many(&ids);
            for (&i, first) in miss_idx.iter().zip(frames) {
                let handle = &handles[i];
                let frame = match first {
                    Ok(frame) => Ok(frame),
                    Err(e) => self.finish_read_retries(handle.id, e),
                };
                out[i] = Some(match frame {
                    Ok(frame) => match DataBlock::decode(&frame) {
                        Ok(b) => {
                            let block = Arc::new(b);
                            self.cache.lock().insert(handle.id, Arc::clone(&block));
                            Ok(block)
                        }
                        Err(LsmError::Codec(_)) => Err(self.quarantine(handle)),
                        Err(e) => Err(e),
                    },
                    Err(sim_ssd::DeviceError::Corrupt(_)) => Err(self.quarantine(handle)),
                    Err(e) => Err(e.into()),
                });
            }
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Start a write batch: stage several `write_block`s and land them
    /// with one coalesced device call. See [`WriteBatch`].
    pub fn write_batch(&self) -> WriteBatch<'_> {
        WriteBatch { store: self, staged: Vec::new() }
    }

    /// Record `handle` as lost and build the `Degraded` error for it.
    fn quarantine(&self, handle: &BlockHandle) -> LsmError {
        let fresh =
            self.quarantined.lock().insert(handle.id.raw(), (handle.min, handle.max)).is_none();
        if fresh {
            let block = handle.id.raw();
            self.sink.emit_with(|| Event::BlockQuarantined { block });
        }
        LsmError::Degraded { ranges: vec![(handle.min, handle.max)] }
    }

    /// Release a block: TRIM on the device, id back to the allocator,
    /// cached copy dropped. Quarantined blocks are never released (their
    /// ids leak by design — reusing a suspect frame risks silent aliasing),
    /// and blocks the last durable manifest references are only released
    /// after the next checkpoint commits.
    pub fn free_block(&self, handle: &BlockHandle) -> Result<()> {
        self.cache.lock().remove(&handle.id);
        if self.quarantined.lock().contains_key(&handle.id.raw()) {
            return Ok(());
        }
        if self.protected.lock().contains(&handle.id.raw()) {
            self.deferred_free.lock().push(handle.id);
            return Ok(());
        }
        self.with_retries(|| self.device.trim(handle.id))?;
        self.alloc.free(handle.id);
        Ok(())
    }

    /// Flush the device, retrying transient sync errors.
    pub fn sync(&self) -> Result<()> {
        self.with_retries(|| self.device.sync())?;
        Ok(())
    }

    /// A checkpoint manifest referencing `ids` just became durable
    /// (renamed into place): those blocks are now the protected set, and
    /// every deferred free whose block the new manifest no longer
    /// references can finally be trimmed and recycled.
    pub fn finish_checkpoint<I: IntoIterator<Item = u64>>(&self, ids: I) -> Result<()> {
        let new_protected: HashSet<u64> = ids.into_iter().collect();
        let pending = {
            let mut protected = self.protected.lock();
            *protected = new_protected;
            let mut deferred = self.deferred_free.lock();
            let (free_now, keep): (Vec<BlockId>, Vec<BlockId>) =
                deferred.drain(..).partition(|id| !protected.contains(&id.raw()));
            *deferred = keep;
            free_now
        };
        for id in pending {
            self.with_retries(|| self.device.trim(id))?;
            self.alloc.free(id);
        }
        Ok(())
    }

    /// A merge or compaction dropped quarantined block `id` from its level:
    /// the structure no longer references it.
    pub fn note_read_repair(&self, id: u64) {
        if self.quarantined.lock().contains_key(&id) && self.repaired.lock().insert(id) {
            self.sink.emit_with(|| Event::ReadRepair { block: id });
        }
    }

    /// Key ranges that may have been lost to quarantined blocks, in block
    /// order. Empty on a healthy tree.
    pub fn degraded_ranges(&self) -> Vec<(Key, Key)> {
        self.quarantined.lock().values().copied().collect()
    }

    /// Ids of quarantined blocks (never reused).
    pub fn quarantined_ids(&self) -> Vec<u64> {
        self.quarantined.lock().keys().copied().collect()
    }

    /// Ids of quarantined blocks already dropped from the structure by a
    /// merge. A level referencing one of these is an invariant violation.
    pub fn repaired_ids(&self) -> Vec<u64> {
        self.repaired.lock().iter().copied().collect()
    }

    /// Device I/O counters (reads/writes/trims so far).
    pub fn io_snapshot(&self) -> sim_ssd::IoSnapshot {
        self.device.io_snapshot()
    }

    /// Buffer-cache statistics.
    pub fn cache_stats(&self) -> sim_ssd::cache::CacheStats {
        self.cache.lock().stats()
    }

    /// Blocks currently allocated to the index.
    pub fn live_blocks(&self) -> u64 {
        self.alloc.live_blocks()
    }

    /// Blocks still available on the device.
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }
}

/// Batches [`Store::write_block`] calls into coalesced device writes.
///
/// `stage` does everything `write_block` does *except* touch the device:
/// allocate the id, encode the frame, build the fence handle and bloom,
/// seed the cache. `flush` then lands every staged frame with one
/// [`BlockDevice::write_many`] call (adjacent ids coalesce into single
/// syscalls on a file backend) and re-runs the per-block retry ladder for
/// any transient failure, against the same id, exactly like `write_block`.
///
/// **Discipline:** a staged block's frame does not exist on the device
/// until `flush`. Callers must flush before (a) freeing a staged block,
/// (b) reading one back when it may have been evicted from the cache, or
/// (c) publishing the handles into the tree. A batch dropped with staged
/// blocks (an error-path abort) releases their ids and cache entries —
/// the frames never reached the device, so the handles must die with it.
pub struct WriteBatch<'a> {
    store: &'a Store,
    staged: Vec<(BlockId, bytes::Bytes)>,
}

impl WriteBatch<'_> {
    /// Stage one block, returning its fence handle immediately. The id is
    /// allocated and the cache seeded now; the device write lands at
    /// [`flush`](WriteBatch::flush).
    pub fn stage(&mut self, records: Vec<Record>) -> Result<BlockHandle> {
        debug_assert!(!records.is_empty(), "refusing to stage an empty data block");
        let block = DataBlock::new(records);
        let frame = block.encode(self.store.device.block_size())?;
        let id = self.store.alloc.alloc()?;
        let bloom = if self.store.bloom_bits_per_key > 0 {
            let keys: Vec<u64> = block.records.iter().map(|r| r.key).collect();
            Some(Arc::new(BloomFilter::build(&keys, self.store.bloom_bits_per_key)))
        } else {
            None
        };
        let handle = BlockHandle::describe(id, &block, bloom);
        self.store.cache.lock().insert(id, Arc::new(block));
        self.staged.push((id, frame));
        Ok(handle)
    }

    /// Number of staged-but-unflushed blocks.
    pub fn pending(&self) -> usize {
        self.staged.len()
    }

    /// Land every staged frame on the device with one batched call,
    /// retrying transient per-block failures on the same id. On a
    /// permanent failure the failed block's id is released and its cache
    /// entry dropped (as `write_block` would), and the first error is
    /// returned after every block has been attempted.
    pub fn flush(&mut self) -> Result<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let mut staged = std::mem::take(&mut self.staged);
        // Writes within a batch are mutually unordered (no durability
        // point between them), so hand them to the device sorted by id:
        // the allocator's LIFO free list returns runs of recycled ids in
        // descending order, and sorting turns those back into the
        // ascending extents `write_many` can coalesce.
        staged.sort_by_key(|(id, _)| id.raw());
        let results = self.store.device.write_many(&staged);
        let mut first_err: Option<LsmError> = None;
        for ((id, frame), result) in staged.into_iter().zip(results) {
            let result = match result {
                Ok(()) => Ok(()),
                Err(first) => self.store.finish_write_retries(id, &frame, first),
            };
            if let Err(e) = result {
                self.store.cache.lock().remove(&id);
                self.store.alloc.free(id);
                if first_err.is_none() {
                    first_err = Some(e.into());
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WriteBatch<'_> {
    fn drop(&mut self) {
        // An abandoned batch means the caller aborted on an error between
        // stage and flush. The staged frames never reached the device;
        // releasing the ids here keeps the allocator exactly where a
        // failed `write_block` would have left it.
        for (id, _) in self.staged.drain(..) {
            self.store.cache.lock().remove(&id);
            self.store.alloc.free(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use observe::SinkHandle;
    use sim_ssd::{FaultDevice, FaultPlan};

    fn store() -> Store {
        Store::in_memory(64, 256, 8)
    }

    fn recs(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::put(k, vec![k as u8; 4])).collect()
    }

    fn faulty_store(plan: FaultPlan, retry: RetryPolicy) -> (Arc<FaultDevice>, Store) {
        let inner = Arc::new(MemDevice::with_block_size(64, 256));
        let dev = Arc::new(FaultDevice::with_plan(inner, 1, plan));
        let s = Store::new(Arc::clone(&dev) as Arc<dyn BlockDevice>, 4, 0).with_retry(retry);
        (dev, s)
    }

    #[test]
    fn write_read_free_cycle() {
        let s = store();
        let h = s.write_block(recs(&[1, 5, 9])).unwrap();
        assert_eq!((h.min, h.max, h.count), (1, 9, 3));
        let b = s.read_block(&h).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(s.live_blocks(), 1);
        s.free_block(&h).unwrap();
        assert_eq!(s.live_blocks(), 0);
        let io = s.io_snapshot();
        assert_eq!((io.writes, io.trims), (1, 1));
    }

    #[test]
    fn reads_served_from_cache_do_not_touch_device() {
        let s = store();
        let h = s.write_block(recs(&[1, 2])).unwrap();
        for _ in 0..5 {
            s.read_block(&h).unwrap();
        }
        // write_block seeds the cache, so no device read at all.
        assert_eq!(s.io_snapshot().reads, 0);
        assert!(s.cache_stats().hits >= 5);
    }

    #[test]
    fn cache_miss_goes_to_device() {
        let dev = Arc::new(MemDevice::with_block_size(64, 256));
        let s = Store::new(dev, 1, 0); // cache of one block
        let h1 = s.write_block(recs(&[1])).unwrap();
        let _h2 = s.write_block(recs(&[2])).unwrap(); // evicts h1
        s.read_block(&h1).unwrap();
        assert_eq!(s.io_snapshot().reads, 1);
    }

    #[test]
    fn bloom_built_when_enabled() {
        let dev = Arc::new(MemDevice::with_block_size(64, 256));
        let s = Store::new(dev, 8, 10);
        let h = s.write_block(recs(&[10, 20])).unwrap();
        let bloom = h.bloom.as_ref().expect("bloom enabled");
        assert!(bloom.may_contain(10));
        assert!(bloom.may_contain(20));
    }

    #[test]
    fn bloom_skipped_when_disabled() {
        let s = Store::in_memory(16, 256, 4);
        let h = s.write_block(recs(&[1])).unwrap();
        assert!(h.bloom.is_none());
    }

    #[test]
    fn exhausted_retries_release_the_block_id() {
        // Every write fails, so all attempts are burned and the error
        // surfaces — but the allocated id must be returned.
        let (dev, s) = faulty_store(
            FaultPlan::none().write_error_rate(1.0),
            RetryPolicy { max_attempts: 3, base_backoff_us: 0 },
        );
        assert!(s.write_block(recs(&[1])).is_err());
        assert_eq!(s.live_blocks(), 0);
        // And the id is reusable afterwards.
        dev.set_plan(FaultPlan::none());
        let h = s.write_block(recs(&[1])).unwrap();
        assert_eq!(h.count, 1);
    }

    #[test]
    fn transient_write_fault_is_retried_on_the_same_id() {
        let sink = Arc::new(observe::VecSink::new());
        let (_dev, s) = faulty_store(
            FaultPlan::none().fail_write_at(1),
            RetryPolicy { max_attempts: 4, base_backoff_us: 0 },
        );
        s.set_sink(SinkHandle::new(sink.clone()));
        let h = s.write_block(recs(&[7])).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(s.live_blocks(), 1);
        let events = sink.drain();
        assert!(
            events.iter().any(|e| matches!(e, Event::RetryAttempt { attempt: 1 })),
            "retry must be observable"
        );
    }

    #[test]
    fn transient_read_fault_is_retried() {
        let (dev, s) =
            faulty_store(FaultPlan::none(), RetryPolicy { max_attempts: 4, base_backoff_us: 0 });
        let h = s.write_block(recs(&[3])).unwrap();
        dev.set_plan(FaultPlan::none().fail_read_at(1));
        // Evict the cache so the read really hits the device.
        for k in 0..8u64 {
            s.write_block(recs(&[100 + k])).unwrap();
        }
        let b = s.read_block(&h).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn corrupt_read_quarantines_and_degrades() {
        let sink = Arc::new(observe::VecSink::new());
        let (dev, s) = faulty_store(FaultPlan::none(), RetryPolicy::none());
        s.set_sink(SinkHandle::new(sink.clone()));
        let good = s.write_block(recs(&[1])).unwrap();
        dev.set_plan(FaultPlan::none().bit_flip_rate(1.0));
        let bad = s.write_block(recs(&[40, 60])).unwrap();
        dev.set_plan(FaultPlan::none());
        // Evict both from cache.
        for k in 0..8u64 {
            s.write_block(recs(&[100 + k])).unwrap();
        }
        match s.read_block(&bad) {
            Err(LsmError::Degraded { ranges }) => assert_eq!(ranges, vec![(40, 60)]),
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(s.quarantined_ids(), vec![bad.id.raw()]);
        assert_eq!(s.degraded_ranges(), vec![(40, 60)]);
        assert!(s.read_block(&good).is_ok(), "healthy blocks unaffected");
        let events = sink.drain();
        assert!(events.iter().any(|e| matches!(e, Event::BlockQuarantined { .. })));
        // Quarantined ids are never freed back to the allocator.
        let live = s.live_blocks();
        s.free_block(&bad).unwrap();
        assert_eq!(s.live_blocks(), live, "quarantined id must not be recycled");
    }

    #[test]
    fn protected_blocks_free_only_after_checkpoint() {
        let s = store();
        let h = s.write_block(recs(&[1])).unwrap();
        // Pretend a durable manifest references h.
        s.finish_checkpoint([h.id.raw()]).unwrap();
        let trims_before = s.io_snapshot().trims;
        s.free_block(&h).unwrap();
        assert_eq!(s.io_snapshot().trims, trims_before, "trim must be deferred");
        assert_eq!(s.live_blocks(), 1, "id still allocated");
        // Next checkpoint no longer references h: the free happens.
        s.finish_checkpoint([]).unwrap();
        assert_eq!(s.io_snapshot().trims, trims_before + 1);
        assert_eq!(s.live_blocks(), 0);
    }

    #[test]
    fn read_blocks_mixes_hits_misses_and_degraded() {
        let (dev, s) = faulty_store(FaultPlan::none(), RetryPolicy::none());
        let a = s.write_block(recs(&[1, 2])).unwrap();
        dev.set_plan(FaultPlan::none().bit_flip_rate(1.0));
        let bad = s.write_block(recs(&[10, 20])).unwrap();
        dev.set_plan(FaultPlan::none());
        let b = s.write_block(recs(&[30])).unwrap();
        // Evict a and bad (cache of 4), keep b cached.
        for k in 0..4u64 {
            s.write_block(recs(&[100 + k])).unwrap();
        }
        let c = s.write_block(recs(&[40])).unwrap(); // cached for sure
        let reads_before = s.io_snapshot().reads;
        let results = s.read_blocks(&[a.clone(), bad.clone(), c.clone()]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().records[0].key, 1);
        match &results[1] {
            Err(LsmError::Degraded { ranges }) => assert_eq!(ranges, &vec![(10, 20)]),
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(results[2].as_ref().unwrap().records[0].key, 40);
        // c was a cache hit; a and bad went to the device, but the corrupt
        // read errors out before the device counts it — only a's counts.
        assert_eq!(s.io_snapshot().reads - reads_before, 1);
        assert_eq!(s.quarantined_ids(), vec![bad.id.raw()]);
        // a is now cached: re-reading costs nothing.
        let reads_mid = s.io_snapshot().reads;
        assert!(s.read_block(&a).is_ok());
        assert_eq!(s.io_snapshot().reads, reads_mid);
        drop(b);
    }

    #[test]
    fn write_batch_defers_device_writes_until_flush() {
        let s = store();
        let mut batch = s.write_batch();
        let h1 = batch.stage(recs(&[1, 2])).unwrap();
        let h2 = batch.stage(recs(&[5])).unwrap();
        assert_eq!(batch.pending(), 2);
        assert_eq!((h1.min, h1.max, h1.count), (1, 2, 2));
        assert_eq!(h2.count, 1);
        assert_eq!(s.io_snapshot().writes, 0, "nothing on the device yet");
        assert_eq!(s.live_blocks(), 2, "ids are allocated at stage time");
        batch.flush().unwrap();
        assert_eq!(batch.pending(), 0);
        assert_eq!(s.io_snapshot().writes, 2);
        // Staged blocks are readable after flush even with a cold cache.
        let s2_frame_check = s.read_block(&h1).unwrap();
        assert_eq!(s2_frame_check.records[0].key, 1);
    }

    #[test]
    fn write_batch_retries_transient_flush_failures() {
        let sink = Arc::new(observe::VecSink::new());
        let (_dev, s) = faulty_store(
            FaultPlan::none().fail_write_at(1),
            RetryPolicy { max_attempts: 4, base_backoff_us: 0 },
        );
        s.set_sink(SinkHandle::new(sink.clone()));
        let mut batch = s.write_batch();
        let h = batch.stage(recs(&[7])).unwrap();
        batch.flush().unwrap();
        assert_eq!(s.live_blocks(), 1);
        assert!(s.read_block(&h).is_ok());
        let events = sink.drain();
        assert!(
            events.iter().any(|e| matches!(e, Event::RetryAttempt { attempt: 1 })),
            "batched retry must be observable like write_block's"
        );
    }

    #[test]
    fn abandoned_write_batch_releases_staged_ids() {
        let s = store();
        {
            let mut batch = s.write_batch();
            batch.stage(recs(&[1])).unwrap();
            batch.stage(recs(&[2])).unwrap();
            assert_eq!(s.live_blocks(), 2);
            // Dropped without flush: an error-path abort.
        }
        assert_eq!(s.live_blocks(), 0, "staged ids must not leak");
        assert_eq!(s.io_snapshot().writes, 0);
    }

    #[test]
    fn read_repair_marks_and_reports() {
        let (dev, s) = faulty_store(FaultPlan::none().bit_flip_rate(1.0), RetryPolicy::none());
        let bad = s.write_block(recs(&[5, 9])).unwrap();
        dev.set_plan(FaultPlan::none());
        for k in 0..8u64 {
            s.write_block(recs(&[100 + k])).unwrap();
        }
        assert!(s.read_block(&bad).is_err());
        s.note_read_repair(bad.id.raw());
        assert_eq!(s.repaired_ids(), vec![bad.id.raw()]);
        // Repair does not clear the degraded range — the data is still lost.
        assert_eq!(s.degraded_ranges(), vec![(5, 9)]);
    }
}
