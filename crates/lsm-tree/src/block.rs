//! Data blocks — the B+tree leaves of every on-SSD level.
//!
//! A data block is a fixed-size frame holding a sorted run of records. A
//! [`BlockHandle`] is the in-memory fence entry describing one block: its
//! physical id, key range, and record counts. The ordered list of handles
//! for a level plays the role of the paper's cached internal B+tree nodes
//! (§II-A: "in practice, the internal B+tree nodes of these levels are
//! cached in main memory"); handle metadata is all a merge policy needs to
//! select ranges (§III-C: "there is no need to scan actual data").

use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};

use crate::bloom::BloomFilter;
use crate::error::{LsmError, Result};
use crate::record::{Key, OpKind, Record};

/// Bytes of block header: magic (4) + record count (4) + checksum (4) +
/// reserved (4).
pub const BLOCK_HEADER_LEN: usize = 16;

const BLOCK_MAGIC: u32 = 0x4C_53_4D_42; // "LSMB"

/// A decoded data block: records sorted by key, unique keys.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataBlock {
    /// The records, in strictly increasing key order.
    pub records: Vec<Record>,
}

impl DataBlock {
    /// Build a block from records that must already be sorted and unique.
    pub fn new(records: Vec<Record>) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0].key < w[1].key),
            "records must be sorted and unique"
        );
        DataBlock { records }
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the block has no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Smallest key (panics on empty block).
    #[inline]
    pub fn min_key(&self) -> Key {
        self.records[0].key
    }

    /// Largest key (panics on empty block).
    #[inline]
    pub fn max_key(&self) -> Key {
        self.records[self.records.len() - 1].key
    }

    /// Number of tombstone records.
    pub fn tombstones(&self) -> u32 {
        self.records.iter().filter(|r| r.is_tombstone()).count() as u32
    }

    /// Binary-search a key within the block.
    pub fn find(&self, key: Key) -> Option<&Record> {
        self.records.binary_search_by_key(&key, |r| r.key).ok().map(|i| &self.records[i])
    }

    /// Serialize into a frame of exactly `block_size` bytes.
    pub fn encode(&self, block_size: usize) -> Result<Bytes> {
        let body_len: usize = self.records.iter().map(Record::encoded_len).sum();
        if BLOCK_HEADER_LEN + body_len > block_size {
            return Err(LsmError::RecordTooLarge {
                record_bytes: body_len,
                block_payload_bytes: block_size - BLOCK_HEADER_LEN,
            });
        }
        let mut buf = BytesMut::with_capacity(block_size);
        buf.put_u32_le(BLOCK_MAGIC);
        buf.put_u32_le(self.records.len() as u32);
        buf.put_u32_le(0); // checksum patched below
        buf.put_u32_le(0); // reserved
        for r in &self.records {
            buf.put_u64_le(r.key);
            buf.put_u8(match r.op {
                OpKind::Put => 0,
                OpKind::Delete => 1,
            });
            buf.put_u32_le(r.payload.len() as u32);
            buf.put_slice(&r.payload);
        }
        let checksum = fnv1a(&buf[BLOCK_HEADER_LEN..]);
        buf.resize(block_size, 0);
        buf[8..12].copy_from_slice(&checksum.to_le_bytes());
        Ok(buf.freeze())
    }

    /// Decode a frame previously produced by [`DataBlock::encode`].
    pub fn decode(frame: &[u8]) -> Result<DataBlock> {
        if frame.len() < BLOCK_HEADER_LEN {
            return Err(LsmError::Codec("frame shorter than header".into()));
        }
        let magic = u32::from_le_bytes(frame[0..4].try_into().unwrap());
        if magic != BLOCK_MAGIC {
            return Err(LsmError::Codec(format!("bad magic 0x{magic:08x}")));
        }
        let count = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(frame[8..12].try_into().unwrap());
        if frame[12..16] != [0, 0, 0, 0] {
            return Err(LsmError::Codec("reserved header bytes not zero".into()));
        }
        let mut records = Vec::with_capacity(count);
        let mut off = BLOCK_HEADER_LEN;
        for _ in 0..count {
            if off + 13 > frame.len() {
                return Err(LsmError::Codec("truncated record header".into()));
            }
            let key = u64::from_le_bytes(frame[off..off + 8].try_into().unwrap());
            let op = match frame[off + 8] {
                0 => OpKind::Put,
                1 => OpKind::Delete,
                other => return Err(LsmError::Codec(format!("bad op tag {other}"))),
            };
            let plen = u32::from_le_bytes(frame[off + 9..off + 13].try_into().unwrap()) as usize;
            off += 13;
            if off + plen > frame.len() {
                return Err(LsmError::Codec("truncated payload".into()));
            }
            let payload = Bytes::copy_from_slice(&frame[off..off + plen]);
            off += plen;
            records.push(Record { key, op, payload });
        }
        // The checksum covers the record bytes; the padding after them must
        // be all zeros, so a flipped bit anywhere in the frame is caught.
        let body_sum = checksum_frame(&frame[BLOCK_HEADER_LEN..off], &frame[off..]);
        if body_sum != stored_sum {
            return Err(LsmError::Codec("checksum mismatch".into()));
        }
        if !records.windows(2).all(|w| w[0].key < w[1].key) {
            return Err(LsmError::Codec("records not sorted/unique".into()));
        }
        Ok(DataBlock { records })
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Checksum of the record body; the zero padding after it must indeed be
/// zero, otherwise we force a mismatch (corrupted padding is corruption).
fn checksum_frame(body: &[u8], padding: &[u8]) -> u32 {
    if !padding.iter().all(|&b| b == 0) {
        return !fnv1a(body);
    }
    fnv1a(body)
}

/// In-memory fence entry for one on-SSD data block.
#[derive(Debug, Clone)]
pub struct BlockHandle {
    /// Physical block id on the device.
    pub id: sim_ssd::BlockId,
    /// Smallest key stored in the block.
    pub min: Key,
    /// Largest key stored in the block.
    pub max: Key,
    /// Number of records in the block.
    pub count: u32,
    /// Number of tombstones among them (needed to decide whether the block
    /// may be preserved as-is when merging into the bottom level).
    pub tombstones: u32,
    /// Optional per-block Bloom filter over the keys.
    pub bloom: Option<Arc<BloomFilter>>,
}

impl BlockHandle {
    /// Fence entry describing `block` stored at `id`.
    pub fn describe(
        id: sim_ssd::BlockId,
        block: &DataBlock,
        bloom: Option<Arc<BloomFilter>>,
    ) -> Self {
        assert!(!block.is_empty(), "cannot describe an empty block");
        BlockHandle {
            id,
            min: block.min_key(),
            max: block.max_key(),
            count: block.len() as u32,
            tombstones: block.tombstones(),
            bloom,
        }
    }

    /// Does `[min, max]` contain `key`?
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.min <= key && key <= self.max
    }

    /// Does the block's key range intersect `[lo, hi]`?
    #[inline]
    pub fn overlaps(&self, lo: Key, hi: Key) -> bool {
        self.max >= lo && self.min <= hi
    }

    /// Empty record slots given block capacity `b`.
    #[inline]
    pub fn empty_slots(&self, b: usize) -> usize {
        b.saturating_sub(self.count as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_ssd::BlockId;

    fn sample_block() -> DataBlock {
        DataBlock::new(vec![
            Record::put(1, vec![0xA; 4]),
            Record::delete(5),
            Record::put(9, vec![0xB; 2]),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let b = sample_block();
        let frame = b.encode(128).unwrap();
        assert_eq!(frame.len(), 128);
        let d = DataBlock::decode(&frame).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let b = sample_block();
        let mut frame = b.encode(128).unwrap().to_vec();
        frame[0] ^= 0xFF;
        assert!(DataBlock::decode(&frame).is_err());
    }

    #[test]
    fn decode_rejects_flipped_bits() {
        let b = sample_block();
        let frame = b.encode(256).unwrap();
        for pos in [20usize, 40, 200, 255] {
            let mut bad = frame.to_vec();
            bad[pos] ^= 0x01;
            assert!(DataBlock::decode(&bad).is_err(), "bit flip at {pos} undetected");
        }
    }

    #[test]
    fn encode_rejects_overflow() {
        let b = DataBlock::new(vec![Record::put(1, vec![0; 1000])]);
        assert!(matches!(b.encode(128), Err(LsmError::RecordTooLarge { .. })));
    }

    #[test]
    fn block_accessors() {
        let b = sample_block();
        assert_eq!((b.min_key(), b.max_key(), b.len()), (1, 9, 3));
        assert_eq!(b.tombstones(), 1);
        assert!(b.find(5).unwrap().is_tombstone());
        assert!(b.find(2).is_none());
        assert!(!b.is_empty());
        assert!(DataBlock::default().is_empty());
    }

    #[test]
    fn handle_geometry() {
        let b = sample_block();
        let h = BlockHandle::describe(BlockId(7), &b, None);
        assert_eq!((h.min, h.max, h.count, h.tombstones), (1, 9, 3, 1));
        assert!(h.contains(1) && h.contains(9) && h.contains(5));
        assert!(!h.contains(0) && !h.contains(10));
        assert!(h.overlaps(9, 20) && h.overlaps(0, 1) && h.overlaps(4, 6));
        assert!(!h.overlaps(10, 20) && !h.overlaps(0, 0));
        assert_eq!(h.empty_slots(10), 7);
        assert_eq!(h.empty_slots(2), 0);
    }

    #[test]
    fn empty_block_round_trip() {
        let b = DataBlock::default();
        let frame = b.encode(64).unwrap();
        assert_eq!(DataBlock::decode(&frame).unwrap(), b);
    }

    #[test]
    fn decode_rejects_unsorted() {
        // Hand-build a frame with out-of-order keys but a valid checksum by
        // encoding then swapping records through the public API guard.
        let rec = vec![Record::put(9, vec![]), Record::put(1, vec![])];
        let block = DataBlock { records: rec };
        let frame = block.encode(64).unwrap();
        assert!(DataBlock::decode(&frame).is_err());
    }
}
