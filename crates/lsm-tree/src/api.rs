//! The unified write-path interface: [`WriteApi`] + [`WriteBatch`].
//!
//! Every front-end — [`LsmTree`](crate::LsmTree),
//! [`SharedLsmTree`](crate::SharedLsmTree),
//! [`ShardedLsmTree`](crate::ShardedLsmTree),
//! [`SteppedMergeTree`](crate::SteppedMergeTree), and
//! [`DurableLsmTree`](crate::DurableLsmTree) — speaks the same five-verb
//! vocabulary (`put` / `delete` / `apply` / `write_batch` / `flush`), so
//! workload generators and benches drive any of them through one generic
//! bound instead of accumulating per-type method drift. The historical
//! inherent methods remain (concrete callers see no change); the trait
//! routes through them.
//!
//! `flush` is the quiescence point: it drains whatever the front-end has
//! buffered — sealed memtables, pending merge jobs, unsynced WAL bytes — so
//! that a subsequent read (or crash) observes everything previously applied.
//! On an inline tree it is a cheap no-op.

use bytes::Bytes;

use crate::error::Result;
use crate::record::{Key, Request};

/// An ordered batch of write requests, applied front to back (so a later
/// `put` shadows an earlier one for the same key, exactly as if applied
/// one by one).
///
/// Batches exist for two reasons: they let callers hand a whole unit of
/// work across the [`WriteApi`] boundary in one call, and they let
/// WAL-backed front-ends commit the unit with a *single* fsync
/// ([`CommitMode::Group`](crate::CommitMode) and the batch override in
/// [`ShardedLsmTree`](crate::ShardedLsmTree)) instead of one per request.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    reqs: Vec<Request>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// An empty batch with room for `n` requests.
    pub fn with_capacity(n: usize) -> Self {
        WriteBatch { reqs: Vec::with_capacity(n) }
    }

    /// Queue an insert/update. Returns `&mut self` for chaining.
    pub fn put(&mut self, key: Key, payload: impl Into<Bytes>) -> &mut Self {
        self.reqs.push(Request::Put(key, payload.into()));
        self
    }

    /// Queue a delete. Returns `&mut self` for chaining.
    pub fn delete(&mut self, key: Key) -> &mut Self {
        self.reqs.push(Request::Delete(key));
        self
    }

    /// Queue an arbitrary request.
    pub fn push(&mut self, req: Request) -> &mut Self {
        self.reqs.push(req);
        self
    }

    /// Queued requests, in application order.
    pub fn requests(&self) -> &[Request] {
        &self.reqs
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Consume the batch, yielding the requests.
    pub fn into_requests(self) -> Vec<Request> {
        self.reqs
    }
}

impl FromIterator<Request> for WriteBatch {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        WriteBatch { reqs: iter.into_iter().collect() }
    }
}

impl Extend<Request> for WriteBatch {
    fn extend<I: IntoIterator<Item = Request>>(&mut self, iter: I) {
        self.reqs.extend(iter);
    }
}

impl IntoIterator for WriteBatch {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.reqs.into_iter()
    }
}

/// The write path every front-end implements.
///
/// Methods take `&mut self` so single-threaded front-ends implement the
/// trait without interior mutability; the concurrent wrappers
/// ([`SharedLsmTree`](crate::SharedLsmTree),
/// [`ShardedLsmTree`](crate::ShardedLsmTree)) are `Clone`, so callers that
/// need shared `&self` writes keep using their inherent methods and hand
/// each thread its own clone for trait-generic code.
///
/// `put` takes `impl Into<Bytes>`, so the trait is not object-safe; use it
/// as a generic bound (`fn run<W: WriteApi>(w: &mut W)`), which is what the
/// workload and bench crates do.
pub trait WriteApi {
    /// Apply one request (insert/update or delete).
    fn apply(&mut self, req: Request) -> Result<()>;

    /// Drain everything buffered — sealed memtables, queued merge jobs,
    /// unsynced WAL bytes — so prior writes are visible to readers and (for
    /// WAL-backed front-ends) crash-durable. No-op when nothing is pending.
    fn flush(&mut self) -> Result<()>;

    /// Insert or update `key`.
    fn put(&mut self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.apply(Request::Put(key, payload.into()))
    }

    /// Delete `key`.
    fn delete(&mut self, key: Key) -> Result<()> {
        self.apply(Request::Delete(key))
    }

    /// Apply a batch front to back. The default simply loops
    /// [`WriteApi::apply`]; WAL-backed front-ends override it to commit the
    /// whole batch under one fsync.
    fn write_batch(&mut self, batch: WriteBatch) -> Result<()> {
        for req in batch {
            self.apply(req)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::tree::{LsmTree, TreeOptions};

    fn tiny_cfg() -> LsmConfig {
        LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        }
    }

    #[test]
    fn batch_applies_in_order() {
        let mut t = LsmTree::with_mem_device(tiny_cfg(), TreeOptions::default(), 1 << 16).unwrap();
        let mut b = WriteBatch::new();
        b.put(1, vec![1u8; 4]).put(2, vec![2u8; 4]).delete(1).put(2, vec![9u8; 4]);
        assert_eq!(b.len(), 4);
        t.write_batch(b).unwrap();
        assert_eq!(t.get(1).unwrap(), None, "later delete shadows the put");
        assert_eq!(t.get(2).unwrap().as_deref(), Some(&[9u8; 4][..]), "last write wins");
    }

    #[test]
    fn generic_driver_works_over_any_front_end() {
        fn drive<W: WriteApi>(w: &mut W) {
            for k in 0..300u64 {
                w.put(k, vec![(k % 251) as u8; 4]).unwrap();
            }
            w.delete(7).unwrap();
            w.flush().unwrap();
        }
        let mut plain =
            LsmTree::with_mem_device(tiny_cfg(), TreeOptions::default(), 1 << 16).unwrap();
        drive(&mut plain);
        assert_eq!(plain.get(7).unwrap(), None);
        assert_eq!(plain.get(8).unwrap().as_deref(), Some(&[8u8; 4][..]));

        let mut stepped =
            crate::SteppedMergeTree::with_mem_device(tiny_cfg(), TreeOptions::default(), 1 << 16)
                .unwrap();
        drive(&mut stepped);
        assert_eq!(stepped.get(7).unwrap(), None);

        let mut shared = crate::SharedLsmTree::new(
            LsmTree::with_mem_device(tiny_cfg(), TreeOptions::default(), 1 << 16).unwrap(),
        );
        drive(&mut shared);
        assert_eq!(shared.get(7).unwrap(), None);
    }

    #[test]
    fn batch_collects_from_iterator() {
        let b: WriteBatch = (0..5u64).map(|k| Request::Put(k, vec![0u8; 4].into())).collect();
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.requests().len(), 5);
    }
}
