//! Write-ahead logging for L0 and the durable-tree wrapper.
//!
//! The manifest ([`crate::manifest`]) checkpoints the on-SSD state, but L0
//! lives in memory: modifications since the last checkpoint would vanish
//! in a crash. [`WriteAheadLog`] is the standard fix — an append-only,
//! checksummed record of every request, replayed on recovery and truncated
//! at each checkpoint. [`DurableLsmTree`] glues the three pieces together:
//!
//! ```text
//! apply(req):   WAL.append(req)  →  tree.apply(req)
//! checkpoint(): device.sync → manifest.write → WAL.truncate
//! recover():    manifest.restore → WAL.replay (tolerating a torn tail)
//! ```
//!
//! Frame format (little-endian): `len u32 | fnv1a32(payload) u32 |
//! payload`, payload = `op u8 | key u64 [| plen u32 | payload bytes]`.
//! Replay stops cleanly at the first truncated or corrupt frame, which is
//! exactly the torn-write behaviour of a crash mid-append.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use sim_ssd::{BlockDevice, DeviceError, FaultKind, SplitMix64};

use crate::error::Result;
use crate::record::{Key, Request};
use crate::tree::{LsmTree, TreeOptions};

/// Seeded fault injection for [`WriteAheadLog::sync`], mirroring
/// [`sim_ssd::FaultPlan`] for the one durability primitive the WAL owns:
/// the fsync. An injected failure fires *before* the real `sync_data`, so
/// the appended bytes stay in an unknown durable state — exactly the
/// situation that makes retrying an fsync unsound — and the log is
/// poisoned until re-opened, like [`sim_ssd::FileDevice`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WalFaultPlan {
    /// Per-sync failure probability.
    pub sync_error_rate: f64,
    /// Deterministically fail the nth sync attempt (0-based, counted over
    /// attempts that actually reach the fsync, not no-ops).
    pub fail_sync_at: Option<u64>,
}

impl WalFaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        WalFaultPlan::default()
    }

    /// Fail each sync attempt with probability `p`.
    pub fn sync_error_rate(mut self, p: f64) -> Self {
        self.sync_error_rate = p;
        self
    }

    /// Fail exactly the `nth` sync attempt (0-based).
    pub fn fail_sync_at(mut self, nth: u64) -> Self {
        self.fail_sync_at = Some(nth);
        self
    }
}

fn fnv1a32(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// An append-only request log.
pub struct WriteAheadLog {
    writer: BufWriter<File>,
    path: PathBuf,
    appended: u64,
    /// Bytes appended since creation/truncation (some may still sit in the
    /// userspace buffer or the page cache).
    len: u64,
    /// Bytes known crash-durable (flushed *and* fsynced). Crash simulators
    /// truncate the file anywhere in `[synced_len, len]` to model what a
    /// host power cut can leave behind.
    synced_len: u64,
    /// Fsyncs issued over the log's lifetime (not reset by truncation) —
    /// the denominator of the group-commit economy: N writers sharing one
    /// fsync show up here as 1, not N.
    syncs: u64,
    /// Sync attempts that reached the fsync path (successful or injected),
    /// the ordinal [`WalFaultPlan::fail_sync_at`] counts against.
    sync_attempts: u64,
    /// A sync failed; every later append/sync fails until re-open. Retrying
    /// a failed fsync is unsound (the kernel may have dropped the dirty
    /// pages), so the log refuses to pretend otherwise.
    poisoned: bool,
    /// Injected-fault plan plus its seeded RNG, when installed.
    fault: Option<(WalFaultPlan, SplitMix64)>,
}

impl WriteAheadLog {
    /// Create (truncate) a log at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path.as_ref())
            .map_err(DeviceError::Io)?;
        // Make the directory entry durable too: a crash right after
        // creation must not leave a WAL whose file vanishes with the
        // unsynced directory, or recovery would silently skip replay.
        sim_ssd::fsync_parent_dir(path.as_ref()).map_err(DeviceError::Io)?;
        Ok(WriteAheadLog {
            writer: BufWriter::new(file),
            path: path.as_ref().to_path_buf(),
            appended: 0,
            len: 0,
            synced_len: 0,
            syncs: 0,
            sync_attempts: 0,
            poisoned: false,
            fault: None,
        })
    }

    /// Install a seeded fsync fault plan (crash-torture harnesses). The
    /// plan survives truncation but not re-open.
    pub fn set_fault_plan(&mut self, plan: WalFaultPlan, seed: u64) {
        self.fault = Some((plan, SplitMix64::new(seed ^ 0x57A1_F5C4_0DD5_EED5)));
    }

    /// Whether a failed sync has poisoned the log (re-open to clear).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(DeviceError::Poisoned.into());
        }
        Ok(())
    }

    /// Read every intact frame of the log at `path` (stopping at the
    /// first torn/corrupt frame), then reopen it for appending.
    pub fn open_and_replay<P: AsRef<Path>>(path: P) -> Result<(Self, Vec<Request>)> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes).map_err(DeviceError::Io)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(DeviceError::Io(e).into()),
        }
        let mut requests = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = start + len;
            if end > bytes.len() {
                break; // torn tail
            }
            let payload = &bytes[start..end];
            if fnv1a32(payload) != sum {
                break; // corrupt tail
            }
            match Self::decode_request(payload) {
                Some(req) => requests.push(req),
                None => break,
            }
            pos = end;
        }
        // Reopen preserving only the intact prefix: rewrite it so future
        // appends extend a clean log.
        let mut wal = Self::create(path.as_ref())?;
        for req in &requests {
            wal.append(req)?;
        }
        wal.sync()?;
        Ok((wal, requests))
    }

    fn encode_request(req: &Request) -> Vec<u8> {
        match req {
            Request::Put(k, payload) => {
                let mut out = Vec::with_capacity(13 + payload.len());
                out.push(0u8);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
                out
            }
            Request::Delete(k) => {
                let mut out = Vec::with_capacity(9);
                out.push(1u8);
                out.extend_from_slice(&k.to_le_bytes());
                out
            }
        }
    }

    fn decode_request(payload: &[u8]) -> Option<Request> {
        let op = *payload.first()?;
        let key = Key::from_le_bytes(payload.get(1..9)?.try_into().ok()?);
        match op {
            0 => {
                let plen = u32::from_le_bytes(payload.get(9..13)?.try_into().ok()?) as usize;
                let body = payload.get(13..13 + plen)?;
                if payload.len() != 13 + plen {
                    return None;
                }
                Some(Request::Put(key, Bytes::copy_from_slice(body)))
            }
            1 if payload.len() == 9 => Some(Request::Delete(key)),
            _ => None,
        }
    }

    /// Append one request (buffered; call [`WriteAheadLog::sync`] to make
    /// it crash-durable). Returns the number of bytes appended, framing
    /// included.
    pub fn append(&mut self, req: &Request) -> Result<usize> {
        self.check_poisoned()?;
        let payload = Self::encode_request(req);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| self.writer.write_all(&fnv1a32(&payload).to_le_bytes()))
            .and_then(|()| self.writer.write_all(&payload))
            .map_err(DeviceError::Io)?;
        self.appended += 1;
        self.len += 8 + payload.len() as u64;
        Ok(8 + payload.len())
    }

    /// Flush and fsync. A no-op (no fsync issued or counted) when
    /// everything appended is already durable.
    pub fn sync(&mut self) -> Result<()> {
        self.check_poisoned()?;
        if self.synced_len == self.len {
            return Ok(());
        }
        // Flush userspace buffers first: an injected fsync failure models
        // the kernel losing dirty pages, not the process losing its own
        // buffer, so the bytes must be on the file (torn-tail material).
        self.writer.flush().map_err(DeviceError::Io)?;
        self.fsync_now()?;
        self.synced_len = self.len;
        Ok(())
    }

    /// The injection-aware fsync shared by [`sync`](WriteAheadLog::sync)
    /// and [`truncate`](WriteAheadLog::truncate): counts the attempt,
    /// consults the fault plan, and poisons the log on any failure.
    fn fsync_now(&mut self) -> Result<()> {
        let attempt = self.sync_attempts;
        self.sync_attempts += 1;
        let injected = match &mut self.fault {
            Some((plan, rng)) => {
                plan.fail_sync_at == Some(attempt)
                    || (plan.sync_error_rate > 0.0 && rng.chance(plan.sync_error_rate))
            }
            None => false,
        };
        if injected {
            self.poisoned = true;
            return Err(DeviceError::Injected { kind: FaultKind::Sync, op: attempt }.into());
        }
        if let Err(e) = self.writer.get_ref().sync_data() {
            self.poisoned = true;
            return Err(DeviceError::Io(e).into());
        }
        self.syncs += 1;
        Ok(())
    }

    /// Discard everything (after a checkpoint made it redundant).
    pub fn truncate(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.writer.flush().map_err(DeviceError::Io)?;
        self.writer.get_ref().set_len(0).map_err(DeviceError::Io)?;
        // The zero length is file metadata: without an fsync the kernel
        // may persist the *old* length across a power cut, resurrecting
        // pre-checkpoint frames that recovery would then replay on top of
        // the fresh manifest. The fsync goes through the same injection
        // and poison logic as `sync` — a failed truncate leaves the log
        // unusable until re-open, never half-truncated-but-trusted.
        self.fsync_now()?;
        let file = OpenOptions::new().write(true).open(&self.path).map_err(DeviceError::Io)?;
        self.writer = BufWriter::new(file);
        self.appended = 0;
        self.len = 0;
        self.synced_len = 0;
        Ok(())
    }

    /// Requests appended since creation/truncation.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Bytes appended since creation/truncation (buffered included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Bytes of the log known crash-durable (appended before the last
    /// [`WriteAheadLog::sync`]).
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Fsyncs issued over the log's lifetime.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A crash-durable index: LSM-tree + manifest checkpoints + WAL.
pub struct DurableLsmTree {
    tree: LsmTree,
    wal: WriteAheadLog,
    manifest_path: PathBuf,
    /// Fsync the WAL on every request (safest, slowest). When false, the
    /// WAL is fsynced only at checkpoints — a crash may lose the most
    /// recent requests but never corrupts the index (group-commit style).
    pub sync_every_request: bool,
}

impl DurableLsmTree {
    /// Create a fresh durable index: empty tree, empty WAL.
    pub fn create<P: AsRef<Path>>(
        cfg: crate::config::LsmConfig,
        opts: TreeOptions,
        device: Arc<dyn BlockDevice>,
        manifest_path: P,
        wal_path: P,
    ) -> Result<Self> {
        let tree = LsmTree::new(cfg, opts, device)?;
        let sync_every_request = tree.commit_mode() == crate::config::CommitMode::PerRequest;
        let wal = WriteAheadLog::create(wal_path)?;
        let durable = DurableLsmTree {
            tree,
            wal,
            manifest_path: manifest_path.as_ref().to_path_buf(),
            sync_every_request,
        };
        durable.tree.checkpoint(&durable.manifest_path)?;
        Ok(durable)
    }

    /// Recover after a crash or restart: restore the manifest, then replay
    /// the WAL's intact prefix.
    pub fn recover<P: AsRef<Path>>(
        opts: TreeOptions,
        device: Arc<dyn BlockDevice>,
        manifest_path: P,
        wal_path: P,
    ) -> Result<Self> {
        let mut tree = LsmTree::restore(manifest_path.as_ref(), opts, device)?;
        let _span = tree.sink().span(observe::SpanOp::recovery());
        let (wal, requests) = WriteAheadLog::open_and_replay(wal_path)?;
        let replayed = requests.len() as u64;
        for req in requests {
            tree.apply(req)?;
        }
        tree.sink().emit_with(|| observe::Event::Recovery { replayed });
        let sync_every_request = tree.commit_mode() == crate::config::CommitMode::PerRequest;
        Ok(DurableLsmTree {
            tree,
            wal,
            manifest_path: manifest_path.as_ref().to_path_buf(),
            sync_every_request,
        })
    }

    /// Apply one request durably (WAL first, then the index).
    pub fn apply(&mut self, req: Request) -> Result<()> {
        let span = self.tree.sink().span(observe::SpanOp::wal_append());
        let bytes = self.wal.append(&req)? as u64;
        if self.sync_every_request {
            self.wal.sync()?;
        }
        self.tree
            .sink()
            .emit_with(|| observe::Event::WalAppend { bytes, synced: self.sync_every_request });
        drop(span); // the index work that follows is not WAL time
        self.tree.apply(req)
    }

    /// Insert or update.
    pub fn put(&mut self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.apply(Request::Put(key, payload.into()))
    }

    /// Delete.
    pub fn delete(&mut self, key: Key) -> Result<()> {
        self.apply(Request::Delete(key))
    }

    /// Point lookup.
    pub fn get(&mut self, key: Key) -> Result<Option<Bytes>> {
        self.tree.get(key)
    }

    /// Make every applied request crash-durable now (fsync the WAL).
    /// Group-commit callers invoke this at transaction boundaries instead
    /// of setting [`DurableLsmTree::sync_every_request`].
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Checkpoint: manifest snapshot, then WAL truncation. After this
    /// returns, recovery needs only the manifest.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.wal.sync()?;
        self.tree.checkpoint(&self.manifest_path)?;
        self.wal.truncate()?;
        Ok(())
    }

    /// The wrapped tree (scans, stats, verification).
    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }

    /// Mutable access for maintenance (policy swaps etc.). Requests
    /// applied directly to the tree bypass the WAL — use
    /// [`DurableLsmTree::apply`] for data.
    pub fn tree_mut(&mut self) -> &mut LsmTree {
        &mut self.tree
    }

    /// Requests logged since the last checkpoint.
    pub fn wal_backlog(&self) -> u64 {
        self.wal.appended()
    }

    /// Bytes of the WAL known crash-durable (see
    /// [`WriteAheadLog::synced_len`]). Crash simulators truncate the WAL
    /// file anywhere at or beyond this offset.
    pub fn wal_synced_len(&self) -> u64 {
        self.wal.synced_len()
    }

    /// Bytes appended to the WAL since the last checkpoint, durable or not.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Fsyncs issued on the WAL over its lifetime (see
    /// [`WriteAheadLog::syncs`]).
    pub fn wal_syncs(&self) -> u64 {
        self.wal.syncs()
    }
}

impl crate::api::WriteApi for DurableLsmTree {
    fn apply(&mut self, req: Request) -> Result<()> {
        DurableLsmTree::apply(self, req)
    }

    /// Fsync the WAL and drain pending maintenance.
    fn flush(&mut self) -> Result<()> {
        self.wal.sync()?;
        self.tree.drain_maintenance()
    }

    /// Apply the whole batch, then — under [`CommitMode::Group`]
    /// (crate::CommitMode::Group) — make it durable with a *single* fsync
    /// (the single-writer form of group commit; the sharded front-end does
    /// the multi-writer leader/follower form).
    fn write_batch(&mut self, batch: crate::api::WriteBatch) -> Result<()> {
        for req in batch {
            DurableLsmTree::apply(self, req)?;
        }
        if self.tree.commit_mode() == crate::config::CommitMode::Group {
            self.wal.sync()?;
        }
        Ok(())
    }
}

impl Drop for DurableLsmTree {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown.
        let _ = self.wal.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;

    fn wal_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lsm-wal-{}-{tag}.wal", std::process::id()))
    }

    fn put(k: Key, v: u8) -> Request {
        Request::Put(k, Bytes::from(vec![v; 4]))
    }

    #[test]
    fn wal_round_trips_requests() {
        let path = wal_path("roundtrip");
        let reqs = vec![
            put(1, 10),
            Request::Delete(2),
            put(3, 30),
            put(u64::MAX, 255),
            Request::Delete(0),
        ];
        {
            let mut wal = WriteAheadLog::create(&path).unwrap();
            for r in &reqs {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 5);
        }
        let (wal, replayed) = WriteAheadLog::open_and_replay(&path).unwrap();
        assert_eq!(replayed, reqs);
        assert_eq!(wal.appended(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let path = wal_path("torn");
        {
            let mut wal = WriteAheadLog::create(&path).unwrap();
            wal.append(&put(1, 1)).unwrap();
            wal.append(&put(2, 2)).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (_, replayed) = WriteAheadLog::open_and_replay(&path).unwrap();
        assert_eq!(replayed, vec![put(1, 1)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let path = wal_path("corrupt");
        {
            let mut wal = WriteAheadLog::create(&path).unwrap();
            for i in 0..5u64 {
                wal.append(&put(i, i as u8)).unwrap();
            }
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = WriteAheadLog::open_and_replay(&path).unwrap();
        assert!(replayed.len() < 5, "corruption must cut the replay short");
        // Whatever survived is a strict prefix.
        for (i, r) in replayed.iter().enumerate() {
            assert_eq!(*r, put(i as u64, i as u8));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_resets_the_log() {
        let path = wal_path("trunc");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.append(&put(1, 1)).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.appended(), 0);
        wal.append(&put(2, 2)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replayed) = WriteAheadLog::open_and_replay(&path).unwrap();
        assert_eq!(replayed, vec![put(2, 2)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_fsyncs_the_parent_directory() {
        let path = wal_path("dirsync");
        let before = sim_ssd::dir_syncs();
        let _wal = WriteAheadLog::create(&path).unwrap();
        assert!(
            sim_ssd::dir_syncs() > before,
            "creating a WAL must fsync its directory or the file itself may not survive a crash"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_fsyncs_the_empty_log() {
        let path = wal_path("truncsync");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.append(&put(1, 1)).unwrap();
        wal.sync().unwrap();
        let syncs_before = wal.syncs();
        wal.truncate().unwrap();
        // Regression: truncation used to set_len(0) without fsync, so a
        // power cut could resurrect the old length — and replay stale
        // frames over a checkpoint that had already absorbed them.
        assert_eq!(wal.syncs(), syncs_before + 1, "truncate must fsync the new length");
        assert_eq!(wal.synced_len(), 0);
        assert_eq!(wal.len_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_fault_fails_truncate_and_poisons() {
        let path = wal_path("truncfault");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.append(&put(1, 1)).unwrap();
        wal.sync().unwrap(); // attempt 0 succeeds
        wal.set_fault_plan(WalFaultPlan::none().fail_sync_at(1), 9);
        assert!(wal.truncate().is_err(), "truncate's fsync is fault-injectable");
        assert!(wal.is_poisoned(), "a failed truncate must poison the log");
        assert!(wal.append(&put(2, 2)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_wal_replays_empty() {
        let path = wal_path("missing");
        std::fs::remove_file(&path).ok();
        let (_, replayed) = WriteAheadLog::open_and_replay(&path).unwrap();
        assert!(replayed.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durable_tree_survives_a_crash() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let man = dir.join(format!("lsm-dur-{pid}.manifest"));
        let wal = dir.join(format!("lsm-dur-{pid}.wal"));
        let dev_path = dir.join(format!("lsm-dur-{pid}.dev"));
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        {
            let dev = Arc::new(
                sim_ssd::FileDevice::create_with_block_size(&dev_path, 1 << 13, 256).unwrap(),
            );
            let mut t =
                DurableLsmTree::create(cfg.clone(), TreeOptions::default(), dev, &man, &wal)
                    .unwrap();
            for k in 0..800u64 {
                t.put(k, vec![(k % 251) as u8; 4]).unwrap();
            }
            t.checkpoint().unwrap();
            // Post-checkpoint writes live only in the WAL.
            for k in 800..1_000u64 {
                t.put(k, vec![7u8; 4]).unwrap();
            }
            for k in (0..100u64).step_by(2) {
                t.delete(k).unwrap();
            }
            t.wal.sync().unwrap();
            assert!(t.wal_backlog() > 0);
            std::mem::forget(t); // crash: no clean shutdown, no checkpoint
        }
        let dev = Arc::new(sim_ssd::FileDevice::open(&dev_path, 256).unwrap());
        let mut t = DurableLsmTree::recover(TreeOptions::default(), dev, &man, &wal).unwrap();
        for k in 0..1_000u64 {
            let got = t.get(k).unwrap();
            if k < 100 && k % 2 == 0 {
                assert_eq!(got, None, "deleted key {k} resurrected");
            } else if k < 800 {
                assert_eq!(got.as_deref(), Some(&vec![(k % 251) as u8; 4][..]), "key {k}");
            } else {
                assert_eq!(got.as_deref(), Some(&[7u8; 4][..]), "post-checkpoint key {k}");
            }
        }
        crate::verify::check_tree(t.tree(), true).unwrap();
        for p in [&man, &wal, &dev_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn checkpoint_empties_the_backlog() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let man = dir.join(format!("lsm-dur2-{pid}.manifest"));
        let wal = dir.join(format!("lsm-dur2-{pid}.wal"));
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        let dev = Arc::new(sim_ssd::MemDevice::with_block_size(1 << 13, 256));
        let mut t = DurableLsmTree::create(cfg, TreeOptions::default(), dev, &man, &wal).unwrap();
        t.put(1, vec![1u8; 4]).unwrap();
        assert_eq!(t.wal_backlog(), 1);
        t.checkpoint().unwrap();
        assert_eq!(t.wal_backlog(), 0);
        for p in [&man, &wal] {
            std::fs::remove_file(p).ok();
        }
    }
}
