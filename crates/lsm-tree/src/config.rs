//! Index configuration and geometry.
//!
//! Defaults follow the paper's experimental setup (§V): 4 KiB blocks,
//! 4-byte keys + 100-byte payloads, order Γ = 10, top-level capacity K₀,
//! maximum waste factor ε = 0.2, merge rate δ = 0.07.

use crate::block::BLOCK_HEADER_LEN;
use crate::error::{LsmError, Result};

/// Static configuration of an LSM index.
#[derive(Debug, Clone, PartialEq)]
pub struct LsmConfig {
    /// Device block (frame) size in bytes. Paper: 4096.
    pub block_size: usize,
    /// Fixed payload size in bytes used for capacity math. Paper default:
    /// 100-byte payloads next to 4-byte keys. Records with other payload
    /// sizes are accepted as long as they fit a block, but `B` (records
    /// per block) is computed from this value.
    pub payload_size: usize,
    /// Capacity of the memory-resident top level L0, in blocks. Paper:
    /// 250 blocks (1 MB) for the small experiments, 4000 (16 MB) for §V.
    pub k0_blocks: usize,
    /// Γ — the order of the LSM-tree; level capacities grow by this
    /// factor: `K_i = K0 · Γ^i`. Paper default 10.
    pub gamma: usize,
    /// ε — maximum waste factor per level (fraction of empty record slots).
    /// Paper default 0.2.
    pub waste_eps: f64,
    /// δ — merge rate: fraction of a level selected by each partial merge.
    /// Paper defaults: 0.07 (0.05 for the largest runs).
    pub merge_rate: f64,
    /// Data-block LRU cache capacity in blocks. Fence metadata (the
    /// "internal B+tree nodes") is always memory-resident and is *not*
    /// charged against this budget, matching the paper's pinning setup.
    pub cache_blocks: usize,
    /// Bloom-filter bits per key for per-block filters; 0 disables blooms.
    pub bloom_bits_per_key: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            block_size: 4096,
            payload_size: 100,
            k0_blocks: 250,
            gamma: 10,
            waste_eps: 0.2,
            merge_rate: 0.07,
            cache_blocks: 256,
            bloom_bits_per_key: 0,
        }
    }
}

impl LsmConfig {
    /// Validate the configuration, returning it for chaining.
    pub fn validated(self) -> Result<Self> {
        if self.block_size <= BLOCK_HEADER_LEN {
            return Err(LsmError::Config(format!(
                "block_size {} must exceed the {}-byte header",
                self.block_size, BLOCK_HEADER_LEN
            )));
        }
        if self.block_capacity() == 0 {
            return Err(LsmError::Config(format!(
                "a {}-byte payload does not fit a {}-byte block",
                self.payload_size, self.block_size
            )));
        }
        if self.gamma < 2 {
            return Err(LsmError::Config("gamma must be at least 2".into()));
        }
        if self.k0_blocks == 0 {
            return Err(LsmError::Config("k0_blocks must be positive".into()));
        }
        if !(self.merge_rate > 0.0 && self.merge_rate <= 1.0) {
            return Err(LsmError::Config("merge_rate must be in (0, 1]".into()));
        }
        if !(self.waste_eps > 0.0 && self.waste_eps <= 0.5) {
            // The paper requires ε ≤ 0.5 (§II-B).
            return Err(LsmError::Config("waste_eps must be in (0, 0.5]".into()));
        }
        if self.cache_blocks == 0 {
            return Err(LsmError::Config("cache_blocks must be positive".into()));
        }
        Ok(self)
    }

    /// Serialized size of one record with the configured payload.
    #[inline]
    pub fn record_size(&self) -> usize {
        8 + 1 + 4 + self.payload_size
    }

    /// `B` — the number of records per block (§II-A).
    #[inline]
    pub fn block_capacity(&self) -> usize {
        (self.block_size - BLOCK_HEADER_LEN) / self.record_size()
    }

    /// Capacity of paper-level `i` (L0 = 0) in blocks: `K_i = K0 · Γ^i`.
    pub fn level_capacity_blocks(&self, paper_level: usize) -> usize {
        let mut cap = self.k0_blocks;
        for _ in 0..paper_level {
            cap = cap.saturating_mul(self.gamma);
        }
        cap
    }

    /// Capacity of L0 in records.
    #[inline]
    pub fn l0_capacity_records(&self) -> usize {
        self.k0_blocks * self.block_capacity()
    }

    /// Partial-merge window from paper-level `i`, in blocks:
    /// `max(1, ⌊δ·K_i⌋)`.
    pub fn merge_window_blocks(&self, paper_level: usize) -> usize {
        ((self.merge_rate * self.level_capacity_blocks(paper_level) as f64).floor() as usize).max(1)
    }
}

/// How flush and merge maintenance runs (see
/// [`TreeOptions::scheduler`](crate::TreeOptionsBuilder::scheduler)).
///
/// `Inline` is byte-identical to the historical write path: the request
/// that overflows L0 (or any deeper level) performs the whole merge
/// cascade before returning. Deterministic tests — the crash-torture
/// harness, the shard twin tests — rely on that and run in this mode.
///
/// `Background` moves the same work onto a worker pool owned by the
/// concurrent front-ends ([`crate::SharedLsmTree`],
/// [`crate::ShardedLsmTree`]): `put` seals the overflowing memtable,
/// hands it to the [`crate::scheduler::MergeScheduler`], and returns.
/// A bare [`crate::LsmTree`] has no threads of its own, so it treats
/// `Background` as "buffer and let the owner drive maintenance" only when
/// wrapped; used directly it behaves like `Inline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Merges run inline on the triggering request (the default).
    #[default]
    Inline,
    /// Flushes and merges run on a background worker pool.
    Background(BackgroundPolicy),
}

impl Scheduler {
    /// Shorthand for `Background(BackgroundPolicy::default())`.
    pub fn background() -> Self {
        Scheduler::Background(BackgroundPolicy::default())
    }

    /// Whether this is a background configuration.
    pub fn is_background(&self) -> bool {
        matches!(self, Scheduler::Background(_))
    }

    /// The background policy, if any.
    pub fn background_policy(&self) -> Option<BackgroundPolicy> {
        match self {
            Scheduler::Inline => None,
            Scheduler::Background(p) => Some(*p),
        }
    }
}

/// Tuning of the background merge scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundPolicy {
    /// Worker threads draining the job queue. At least 1.
    pub workers: usize,
    /// Admission-control bound: how many sealed (immutable) memtables a
    /// tree may accumulate before further writers stall until a background
    /// flush frees a slot. At least 1.
    pub max_imm_memtables: usize,
}

impl Default for BackgroundPolicy {
    fn default() -> Self {
        BackgroundPolicy { workers: 2, max_imm_memtables: 4 }
    }
}

/// WAL commit discipline (see
/// [`TreeOptions::group_commit`](crate::TreeOptionsBuilder::group_commit)).
///
/// Controls when an append to a write-ahead log becomes crash-durable.
/// Only WAL-backed front-ends consult it; trees without a WAL ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Appends are buffered; fsync happens only at explicit sync points
    /// (checkpoints, [`crate::ShardedLsmTree::sync_wals`], shutdown). The
    /// historical default: fastest, loses the unsynced tail on a crash.
    #[default]
    Buffered,
    /// Every append is followed by its own fsync. Safest and slowest —
    /// N concurrent writers pay N fsyncs.
    PerRequest,
    /// Leader/follower group commit: each writer appends under the shard
    /// lock, then waits for its append to be covered by an fsync. The
    /// first waiter becomes the leader and issues one fsync covering every
    /// append buffered so far; the rest ride along. Same durability as
    /// [`CommitMode::PerRequest`] (apply returns only after the request is
    /// on stable storage) at a fraction of the fsyncs.
    Group,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_geometry() {
        let c = LsmConfig::default().validated().unwrap();
        assert_eq!(c.record_size(), 113);
        // (4096 - 16) / 113 = 36 records per block.
        assert_eq!(c.block_capacity(), 36);
        assert_eq!(c.level_capacity_blocks(0), 250);
        assert_eq!(c.level_capacity_blocks(1), 2500);
        assert_eq!(c.level_capacity_blocks(2), 25000);
        assert_eq!(c.l0_capacity_records(), 250 * 36);
    }

    #[test]
    fn merge_window_is_delta_fraction() {
        let c = LsmConfig { merge_rate: 0.05, ..LsmConfig::default() };
        assert_eq!(c.merge_window_blocks(0), 12); // floor(0.05 * 250)
        assert_eq!(c.merge_window_blocks(1), 125);
    }

    #[test]
    fn merge_window_is_at_least_one_block() {
        let c = LsmConfig { merge_rate: 0.001, k0_blocks: 10, ..LsmConfig::default() };
        assert_eq!(c.merge_window_blocks(0), 1);
    }

    #[test]
    fn validation_rejects_bad_settings() {
        assert!(LsmConfig { gamma: 1, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig { merge_rate: 0.0, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig { merge_rate: 1.5, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig { waste_eps: 0.6, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig { k0_blocks: 0, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig { payload_size: 5000, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig { cache_blocks: 0, ..LsmConfig::default() }.validated().is_err());
        assert!(LsmConfig::default().validated().is_ok());
    }

    #[test]
    fn giant_payload_one_record_per_block() {
        // Paper Fig 9: with 4000-byte payloads a block stores one record.
        let c = LsmConfig { payload_size: 4000, ..LsmConfig::default() };
        assert_eq!(c.block_capacity(), 1);
        assert!(c.validated().is_ok());
    }
}
