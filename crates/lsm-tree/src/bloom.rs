//! Per-block Bloom filters.
//!
//! The paper treats Bloom filters as an orthogonal lookup optimization
//! (§II: "our technical report discusses how our techniques work with
//! concurrency control and Bloom filters"). We provide per-block filters
//! built when a block is written; they live in the in-memory fence entry
//! ([`crate::block::BlockHandle`]) and let point lookups skip reading
//! blocks that cannot contain the key. Filters never touch the device and
//! therefore never affect the write counts the paper measures.

use crate::record::Key;

/// A classic Bloom filter over `u64` keys using double hashing
/// (Kirsch–Mitzenmacher): `h_i(k) = h1(k) + i · h2(k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
}

/// 64-bit finalizer from SplitMix64 — good avalanche, cheap, dependency-free.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BloomFilter {
    /// Build a filter for `keys` at roughly `bits_per_key` bits per key.
    /// The number of hash functions is the standard optimum
    /// `k ≈ bits_per_key · ln 2`, clamped to `[1, 30]`.
    pub fn build(keys: &[Key], bits_per_key: usize) -> Self {
        let bits_per_key = bits_per_key.max(1);
        let num_bits = (keys.len().max(1) * bits_per_key).max(64);
        let num_hashes =
            ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        let mut f = BloomFilter { bits: vec![0u64; num_bits.div_ceil(64)], num_bits, num_hashes };
        for &k in keys {
            f.insert(k);
        }
        f
    }

    fn insert(&mut self, key: Key) {
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0xdead_beef_cafe_f00d) | 1;
        for i in 0..self.num_hashes {
            let bit =
                (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits as u64) as usize;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// May `key` be in the set? False negatives never occur.
    pub fn may_contain(&self, key: Key) -> bool {
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0xdead_beef_cafe_f00d) | 1;
        for i in 0..self.num_hashes {
            let bit =
                (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits as u64) as usize;
            if self.bits[bit / 64] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Size of the bit array in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash probes per operation.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Key> = (0..500).map(|i| i * 977 + 13).collect();
        let f = BloomFilter::build(&keys, 10);
        for &k in &keys {
            assert!(f.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let keys: Vec<Key> = (0..1000).map(|i| i * 2).collect();
        let f = BloomFilter::build(&keys, 10);
        let mut fp = 0;
        let probes = 10_000u64;
        for i in 0..probes {
            let k = 1_000_000 + i; // definitely absent
            if f.may_contain(k) {
                fp += 1;
            }
        }
        // 10 bits/key gives ~1% theoretical FPR; allow generous slack.
        assert!(fp < probes / 20, "false positive rate too high: {fp}/{probes}");
    }

    #[test]
    fn empty_filter_rejects_everything_possible() {
        let f = BloomFilter::build(&[], 8);
        // No keys inserted: every probe should be negative.
        for k in 0..100 {
            assert!(!f.may_contain(k));
        }
    }

    #[test]
    fn tiny_bits_per_key_still_works() {
        let keys = [1u64, 2, 3];
        let f = BloomFilter::build(&keys, 1);
        assert!(f.num_hashes() >= 1);
        for &k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn geometry_accessors() {
        let f = BloomFilter::build(&[1, 2, 3, 4], 16);
        assert!(f.num_bits() >= 64);
        assert!(f.num_hashes() >= 8);
    }
}
