//! Simulated merge scheduler: the worker pool, minus the threads.
//!
//! The real [`MergeScheduler`](crate::MergeScheduler) runs maintenance on
//! OS threads, so a concurrency bug it exposes depends on kernel
//! scheduling — rerunning the same workload hits a different interleaving
//! and the failure evaporates. [`SimExecutor`] is the same
//! [`SchedulerBackend`] contract implemented as an *explicitly stepped*
//! executor: nothing runs until someone calls [`SimExecutor::step`], and
//! each step performs exactly one bounded maintenance step on a shard
//! chosen by a seeded RNG from the queue. The concurrency-torture harness
//! ([`crate::torture::run_concurrent_crash_cycle`]) interleaves these
//! steps with seeded writer operations, group-commit fsyncs, and injected
//! faults — so every interleaving, including the failing ones, replays
//! byte-for-byte from a single `u64` seed.
//!
//! The executor is single-threaded by design: "worker threads" are just
//! step invocations, and backpressure ([`SimExecutor::wait_for_room`])
//! runs maintenance steps inline instead of blocking, because there is no
//! other thread to run them. The scheduling *decisions* (which shard
//! steps next, when maintenance interleaves with writers) are exactly the
//! degrees of freedom a real pool has — the sim explores them
//! deterministically instead of leaving them to the kernel.

use std::collections::VecDeque;
use std::sync::Arc;

use observe::{Event, SinkHandle};
use parking_lot::Mutex;
use sim_ssd::SplitMix64;

use crate::error::{LsmError, Result};
use crate::lockorder;
use crate::scheduler::{MaintainTarget, SchedulerBackend, SchedulerSnapshot};

struct SimState {
    /// Shard ids with queued work, FIFO order (the seeded step picks an
    /// arbitrary element, so order only affects the candidate set).
    queue: VecDeque<usize>,
    /// Dedup bit per shard, mirroring the real scheduler.
    queued: Vec<bool>,
    targets: Vec<Arc<dyn MaintainTarget>>,
    /// Sealed-memtable backlog per shard, as last reported/probed.
    backlogs: Vec<usize>,
    shutdown: bool,
    /// Interleaving steps executed (productive or not) — the sim clock.
    steps: u64,
}

/// A deterministic, explicitly stepped [`SchedulerBackend`]. See the
/// module docs; inject via
/// [`ShardedLsmTree::with_backend`](crate::ShardedLsmTree::with_backend).
pub struct SimExecutor {
    state: Mutex<SimState>,
    rng: Mutex<SplitMix64>,
    max_imm_memtables: usize,
    sink: SinkHandle,
}

impl SimExecutor {
    /// A stepped executor whose scheduling choices derive from `seed`.
    /// `max_imm_memtables` is the admission-control bound, as in
    /// [`BackgroundPolicy`](crate::BackgroundPolicy).
    pub fn new(max_imm_memtables: usize, seed: u64, sink: SinkHandle) -> Self {
        SimExecutor {
            state: Mutex::new(SimState {
                queue: VecDeque::new(),
                queued: Vec::new(),
                targets: Vec::new(),
                backlogs: Vec::new(),
                shutdown: false,
                steps: 0,
            }),
            rng: Mutex::new(SplitMix64::new(seed ^ 0x51ED_EC07_5EED_C0DE)),
            max_imm_memtables: max_imm_memtables.max(1),
            sink,
        }
    }

    /// Run one scheduling step: pick a seeded shard off the queue, run one
    /// bounded maintenance step on it, and re-enqueue it if it still has
    /// pending work. Returns whether the step did any work (`Ok(false)`
    /// when the queue was empty or the chosen shard turned out dry).
    pub fn step(&self) -> Result<bool> {
        lockorder::assert_no_tree_lock("SimExecutor::step");
        let (shard, target) = {
            let mut s = self.state.lock();
            s.steps += 1;
            if s.queue.is_empty() {
                return Ok(false);
            }
            let pick = self.rng.lock().gen_range(s.queue.len() as u64) as usize;
            let shard = s.queue.remove(pick).expect("pick < queue len");
            s.queued[shard] = false;
            let depth = s.queue.len();
            self.sink.emit_with(|| Event::JobStart { shard, queued: depth });
            (shard, Arc::clone(&s.targets[shard]))
        };
        // Tree work happens strictly outside the scheduler state lock —
        // the same lock-order rule the real worker pool lives by.
        let did = target.maintenance_step()?;
        let backlog = target.backlog();
        let pending = target.has_pending();
        let mut s = self.state.lock();
        s.backlogs[shard] = backlog;
        if pending && !s.queued[shard] {
            s.queued[shard] = true;
            s.queue.push_back(shard);
        }
        Ok(did)
    }

    /// Request shutdown: writers stalled at the admission bound will error
    /// with [`LsmError::Shutdown`] instead of stepping maintenance.
    pub fn request_shutdown(&self) {
        self.state.lock().shutdown = true;
    }

    /// Interleaving steps executed so far.
    pub fn steps_taken(&self) -> u64 {
        self.state.lock().steps
    }
}

impl SchedulerBackend for SimExecutor {
    fn register(&self, target: Arc<dyn MaintainTarget>) -> usize {
        let backlog = target.backlog();
        lockorder::assert_no_tree_lock("SimExecutor::register");
        let mut s = self.state.lock();
        let id = s.targets.len();
        s.targets.push(target);
        s.queued.push(false);
        s.backlogs.push(backlog);
        id
    }

    fn notify(&self, shard: usize, backlog: usize) {
        lockorder::assert_no_tree_lock("SimExecutor::notify");
        let mut s = self.state.lock();
        s.backlogs[shard] = backlog;
        if !s.queued[shard] {
            s.queued[shard] = true;
            s.queue.push_back(shard);
        }
    }

    /// Inline backpressure: there is no worker thread to wait on, so the
    /// "stalled writer" *becomes* the worker, running seeded steps until
    /// the shard's backlog drops below the bound. Deterministic, and it
    /// preserves the real scheduler's contract — including erroring with
    /// [`LsmError::Shutdown`] instead of spinning forever once shutdown is
    /// requested.
    fn wait_for_room(&self, shard: usize) -> Result<()> {
        lockorder::assert_no_tree_lock("SimExecutor::wait_for_room");
        loop {
            {
                let mut s = self.state.lock();
                let backlog = s.backlogs[shard];
                if backlog < self.max_imm_memtables {
                    return Ok(());
                }
                if s.shutdown {
                    return Err(LsmError::Shutdown(format!(
                        "writer stalled at backlog {backlog} on shard {shard} while the \
                         simulated executor shut down"
                    )));
                }
                self.sink.emit_with(|| Event::Backpressure { shard, backlog });
                if !s.queued[shard] {
                    s.queued[shard] = true;
                    s.queue.push_back(shard);
                }
            }
            if !self.step()? {
                // Queue empty (or a dry pick) yet the backlog is still at
                // the bound: re-probe the tree — the mirror can lag — and
                // give up loudly rather than spin if it really is stuck.
                let target = {
                    let s = self.state.lock();
                    Arc::clone(&s.targets[shard])
                };
                let backlog = target.backlog();
                let mut s = self.state.lock();
                s.backlogs[shard] = backlog;
                if backlog >= self.max_imm_memtables && !target.has_pending() {
                    return Err(LsmError::Invariant(format!(
                        "shard {shard} backlog {backlog} at the bound with no \
                         pending maintenance — backpressure can never release"
                    )));
                }
            }
        }
    }

    fn drain(&self) -> Result<()> {
        lockorder::assert_no_tree_lock("SimExecutor::drain");
        loop {
            let targets: Vec<(usize, Arc<dyn MaintainTarget>)> = {
                let s = self.state.lock();
                s.targets.iter().cloned().enumerate().collect()
            };
            let pending: Vec<usize> =
                targets.iter().filter(|(_, t)| t.has_pending()).map(|(i, _)| *i).collect();
            {
                let mut s = self.state.lock();
                for &shard in &pending {
                    if !s.queued[shard] {
                        s.queued[shard] = true;
                        s.queue.push_back(shard);
                    }
                }
                if s.queue.is_empty() && pending.is_empty() {
                    return Ok(());
                }
            }
            self.step()?;
        }
    }

    fn take_error(&self) -> Option<LsmError> {
        // Sim maintenance errors surface synchronously from `step` (there
        // is no background thread to park them on), so nothing pends here.
        None
    }

    fn max_imm_memtables(&self) -> usize {
        self.max_imm_memtables
    }

    fn snapshot(&self) -> SchedulerSnapshot {
        lockorder::assert_no_tree_lock("SimExecutor::snapshot");
        let s = self.state.lock();
        SchedulerSnapshot {
            queued: s.queue.iter().copied().collect(),
            running: Vec::new(),
            requeue: Vec::new(),
            backlogs: s.backlogs.clone(),
            max_imm_memtables: self.max_imm_memtables,
            workers: 0,
            shutdown: s.shutdown,
            pending_err: None,
            sim_steps: Some(s.steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    struct FakeTarget {
        work: AtomicU64,
        backlog: AtomicUsize,
    }

    impl MaintainTarget for FakeTarget {
        fn maintenance_step(&self) -> Result<bool> {
            let prev = self
                .work
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| Some(w.saturating_sub(1)))
                .unwrap();
            if prev <= 1 {
                self.backlog.store(0, Ordering::SeqCst);
            }
            Ok(prev > 0)
        }
        fn backlog(&self) -> usize {
            self.backlog.load(Ordering::SeqCst)
        }
        fn has_pending(&self) -> bool {
            self.work.load(Ordering::SeqCst) > 0
        }
    }

    fn fake(work: u64, backlog: usize) -> Arc<FakeTarget> {
        Arc::new(FakeTarget { work: AtomicU64::new(work), backlog: AtomicUsize::new(backlog) })
    }

    #[test]
    fn nothing_runs_until_stepped() {
        let sim = SimExecutor::new(4, 1, SinkHandle::none());
        let t = fake(3, 1);
        let id = sim.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sim.notify(id, 1);
        assert!(t.has_pending(), "registration and notify must not run work");
        assert!(sim.step().unwrap());
        assert_eq!(t.work.load(Ordering::SeqCst), 2, "one step, one unit");
    }

    #[test]
    fn same_seed_same_step_order() {
        let order = |seed: u64| {
            let sim = SimExecutor::new(4, seed, SinkHandle::none());
            let targets: Vec<_> = (0..4).map(|_| fake(3, 1)).collect();
            for t in targets.iter() {
                let id = sim.register(Arc::clone(t) as Arc<dyn MaintainTarget>);
                sim.notify(id, 1);
            }
            let mut trace = Vec::new();
            while sim.step().unwrap() {
                trace.push(
                    targets.iter().map(|t| t.work.load(Ordering::SeqCst)).collect::<Vec<_>>(),
                );
            }
            trace
        };
        assert_eq!(order(42), order(42), "same seed must replay the same order");
        assert_ne!(order(42), order(43), "different seeds should explore different orders");
    }

    #[test]
    fn drain_runs_everything_to_quiescence() {
        let sim = SimExecutor::new(4, 7, SinkHandle::none());
        let targets: Vec<_> = (0..3).map(|_| fake(10, 2)).collect();
        for t in targets.iter() {
            let id = sim.register(Arc::clone(t) as Arc<dyn MaintainTarget>);
            sim.notify(id, 2);
        }
        sim.drain().unwrap();
        for t in &targets {
            assert!(!t.has_pending());
        }
    }

    #[test]
    fn wait_for_room_steps_inline_until_backlog_drops() {
        let sim = SimExecutor::new(2, 9, SinkHandle::none());
        let t = fake(5, 3); // backlog 3 ≥ bound 2
        let id = sim.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sim.notify(id, 3);
        sim.wait_for_room(id).unwrap();
        assert!(t.backlog() < 2, "inline steps must have drained the backlog");
    }

    #[test]
    fn shutdown_errors_a_stalled_writer() {
        let sim = SimExecutor::new(2, 11, SinkHandle::none());
        let t = fake(5, 3);
        let id = sim.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sim.notify(id, 3);
        sim.request_shutdown();
        assert!(matches!(sim.wait_for_room(id), Err(LsmError::Shutdown(_))));
    }

    #[test]
    fn snapshot_reports_sim_steps() {
        let sim = SimExecutor::new(4, 13, SinkHandle::none());
        let t = fake(2, 1);
        let id = sim.register(Arc::clone(&t) as Arc<dyn MaintainTarget>);
        sim.notify(id, 1);
        sim.step().unwrap();
        let snap = sim.snapshot();
        assert_eq!(snap.workers, 0);
        assert_eq!(snap.sim_steps, Some(1));
        assert_eq!(snap.backlogs.len(), 1);
    }
}
