//! Range scans across all levels.
//!
//! A scan merges the memtable and every on-SSD level in key order, with
//! upper (newer) levels shadowing lower ones and tombstones hiding older
//! versions. Blocks are opened lazily through the buffer cache.

use std::sync::Arc;

use bytes::Bytes;

use crate::block::{BlockHandle, DataBlock};
use crate::error::Result;
use crate::record::{Key, OpKind, Record};
use crate::store::Store;
use crate::tree::LsmTree;

/// Cursor over the blocks of one level restricted to `[lo, hi]`.
struct LevelCursor<'a> {
    store: &'a Store,
    handles: &'a [BlockHandle],
    hpos: usize,
    current: Option<Arc<DataBlock>>,
    cpos: usize,
    lo: Key,
    hi: Key,
}

impl<'a> LevelCursor<'a> {
    fn new(store: &'a Store, handles: &'a [BlockHandle], lo: Key, hi: Key) -> Self {
        LevelCursor { store, handles, hpos: 0, current: None, cpos: 0, lo, hi }
    }

    /// Open blocks until positioned at the next in-range record (or end).
    fn settle(&mut self) -> Result<()> {
        loop {
            if let Some(block) = &self.current {
                if self.cpos < block.len() && block.records[self.cpos].key <= self.hi {
                    return Ok(());
                }
                if self.cpos < block.len() {
                    // Past hi: exhausted.
                    self.hpos = self.handles.len();
                }
                self.current = None;
                self.cpos = 0;
                if self.hpos < self.handles.len() {
                    self.hpos += 1;
                }
                continue;
            }
            let Some(h) = self.handles.get(self.hpos) else { return Ok(()) };
            if h.min > self.hi {
                self.hpos = self.handles.len();
                return Ok(());
            }
            let block = self.store.read_block(h)?;
            // First record ≥ lo within the block.
            let start = block.records.partition_point(|r| r.key < self.lo);
            self.current = Some(block);
            self.cpos = start;
        }
    }

    fn peek(&mut self) -> Result<Option<Key>> {
        self.settle()?;
        Ok(self
            .current
            .as_ref()
            .and_then(|b| b.records.get(self.cpos))
            .filter(|r| r.key <= self.hi)
            .map(|r| r.key))
    }

    fn next_record(&mut self) -> Result<Record> {
        self.settle()?;
        let block = self.current.as_ref().expect("peek said Some");
        let r = block.records[self.cpos].clone();
        self.cpos += 1;
        Ok(r)
    }
}

/// A lazy, ordered range scan over `[lo, hi]`.
pub struct RangeScan<'a> {
    mem: Vec<Record>,
    mem_pos: usize,
    cursors: Vec<LevelCursor<'a>>,
    done: bool,
}

impl<'a> RangeScan<'a> {
    /// Build a scan over `tree` for keys in `[lo, hi]` (empty when
    /// `lo > hi`).
    pub fn new(tree: &'a LsmTree, lo: Key, hi: Key) -> Self {
        if lo > hi {
            return RangeScan { mem: Vec::new(), mem_pos: 0, cursors: Vec::new(), done: true };
        }
        let mem: Vec<Record> = if tree.imm_count() == 0 {
            tree.memtable().range(lo, hi).cloned().collect()
        } else {
            // Fold sealed memtables oldest-first, then the active one, so
            // the newest version of each key survives the collapse.
            let mut merged = std::collections::BTreeMap::new();
            for imm in tree.imm_memtables() {
                for r in imm.range(lo, hi) {
                    merged.insert(r.key, r.clone());
                }
            }
            for r in tree.memtable().range(lo, hi) {
                merged.insert(r.key, r.clone());
            }
            merged.into_values().collect()
        };
        let cursors = tree
            .levels()
            .iter()
            .map(|lvl| {
                let range = lvl.overlap_indices(lo, hi);
                LevelCursor::new(tree.store(), &lvl.handles()[range], lo, hi)
            })
            .collect();
        RangeScan { mem, mem_pos: 0, cursors, done: false }
    }

    fn step(&mut self) -> Result<Option<(Key, Bytes)>> {
        loop {
            // Frontier: smallest key across the memtable and every level.
            let mut min_key: Option<Key> = self.mem.get(self.mem_pos).map(|r| r.key);
            for c in self.cursors.iter_mut() {
                if let Some(k) = c.peek()? {
                    min_key = Some(match min_key {
                        Some(m) => m.min(k),
                        None => k,
                    });
                }
            }
            let Some(key) = min_key else { return Ok(None) };

            // The newest version wins: memtable first, then levels top-down.
            let mut winner: Option<Record> = None;
            if self.mem.get(self.mem_pos).map(|r| r.key) == Some(key) {
                winner = Some(self.mem[self.mem_pos].clone());
                self.mem_pos += 1;
            }
            for c in self.cursors.iter_mut() {
                if c.peek()? == Some(key) {
                    let r = c.next_record()?;
                    if winner.is_none() {
                        winner = Some(r);
                    }
                }
            }
            let winner = winner.expect("some source produced the frontier key");
            match winner.op {
                OpKind::Put => return Ok(Some((winner.key, winner.payload))),
                OpKind::Delete => continue, // shadowed: try the next key
            }
        }
    }
}

impl Iterator for RangeScan<'_> {
    type Item = Result<(Key, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.step() {
            Ok(Some(kv)) => Some(Ok(kv)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

impl LsmTree {
    /// Ordered scan of the live keys in `[lo, hi]`.
    pub fn scan(&self, lo: Key, hi: Key) -> RangeScan<'_> {
        RangeScan::new(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::policy::PolicySpec;
    use crate::tree::TreeOptions;

    fn small_tree(policy: PolicySpec) -> LsmTree {
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        LsmTree::with_mem_device(cfg, TreeOptions::builder().policy(policy).build(), 1 << 16)
            .unwrap()
    }

    fn collect(scan: RangeScan<'_>) -> Vec<Key> {
        scan.map(|r| r.unwrap().0).collect()
    }

    #[test]
    fn scan_within_memtable_only() {
        let mut t = small_tree(PolicySpec::ChooseBest);
        for k in [5u64, 1, 9, 3] {
            t.put(k, vec![k as u8; 4]).unwrap();
        }
        assert_eq!(collect(t.scan(2, 8)), vec![3, 5]);
        assert_eq!(collect(t.scan(0, 100)), vec![1, 3, 5, 9]);
        assert_eq!(collect(t.scan(6, 8)), Vec::<Key>::new());
    }

    #[test]
    fn scan_across_levels_with_shadowing() {
        let mut t = small_tree(PolicySpec::ChooseBest);
        // Force data into levels.
        for k in 0..1000u64 {
            t.put(k * 3, vec![1; 4]).unwrap();
        }
        // Newer versions for a slice of keys (may still be in memtable).
        for k in 100..110u64 {
            t.put(k * 3, vec![2; 4]).unwrap();
        }
        let got: Vec<(Key, Bytes)> = t.scan(300, 327).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 10);
        for (k, v) in got {
            assert_eq!(v[0], 2, "key {k} must show the newer version");
        }
    }

    #[test]
    fn scan_hides_deleted_keys() {
        let mut t = small_tree(PolicySpec::RoundRobin);
        for k in 0..500u64 {
            t.put(k, vec![0; 4]).unwrap();
        }
        for k in (0..500u64).step_by(2) {
            t.delete(k).unwrap();
        }
        let keys = collect(t.scan(0, 20));
        assert_eq!(keys, vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]);
    }

    #[test]
    fn full_scan_matches_model() {
        let mut t = small_tree(PolicySpec::Full);
        let mut model = std::collections::BTreeSet::new();
        let mut state = 99u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (state >> 33) % 2000;
            if state.is_multiple_of(3) {
                t.delete(k).unwrap();
                model.remove(&k);
            } else {
                t.put(k, vec![7; 4]).unwrap();
                model.insert(k);
            }
        }
        let got = collect(t.scan(0, u64::MAX));
        let want: Vec<Key> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_scan() {
        let t = small_tree(PolicySpec::Full);
        assert_eq!(collect(t.scan(0, u64::MAX)), Vec::<Key>::new());
    }

    #[test]
    fn inverted_range_is_empty_not_panic() {
        let mut t = small_tree(PolicySpec::Full);
        t.put(5, vec![0; 4]).unwrap();
        assert_eq!(collect(t.scan(10, 2)), Vec::<Key>::new());
        assert_eq!(collect(t.scan(5, 5)), vec![5]);
    }
}
