//! Shared-access wrapper: concurrent readers, serialized writers.
//!
//! The paper treats concurrency control as orthogonal to its merge-policy
//! contribution (§II; the technical report sketches it). This module
//! provides the standard arrangement for the single-writer LSM design:
//! a reader-writer lock where modifications (and the merges they trigger)
//! hold the write lock, while any number of lookups and range scans
//! proceed concurrently under read locks. Merges under `ChooseBest` are
//! short and bounded (Theorem 2: ≤ δ(1/Γ+1)·K_i blocks), which is exactly
//! the availability argument partial merges were invented for — the write
//! lock is never held for a whole-level rewrite.

use std::sync::{Arc, Weak};

use bytes::Bytes;
use parking_lot::RwLock;

use observe::{SinkHandle, SpanOp};

use crate::error::Result;
use crate::lockorder;
use crate::record::{Key, Request};
use crate::scheduler::{MaintainTarget, MergeScheduler, SchedulerBackend};
use crate::stats::TreeStats;
use crate::tree::LsmTree;

/// The scheduler's handle onto the shared tree: one maintenance step per
/// write-lock acquisition, probes under read locks. Holds a `Weak` so a
/// scheduler outliving the tree degrades to a no-op.
struct SharedTarget {
    tree: Weak<RwLock<LsmTree>>,
}

impl MaintainTarget for SharedTarget {
    fn maintenance_step(&self) -> Result<bool> {
        match self.tree.upgrade() {
            Some(t) => {
                let mut guard = t.write();
                let _tree_lock = lockorder::tree_lock_held();
                guard.maintenance_step()
            }
            None => Ok(false),
        }
    }

    fn backlog(&self) -> usize {
        self.tree.upgrade().map_or(0, |t| t.read().imm_count())
    }

    fn has_pending(&self) -> bool {
        self.tree.upgrade().is_some_and(|t| t.read().maintenance_pending())
    }
}

/// A thread-safe handle to an [`LsmTree`]. Cloning shares the index.
///
/// When the tree was built with
/// [`Scheduler::background`](crate::Scheduler::background), the wrapper
/// owns a [`MergeScheduler`]: `put` seals a full memtable and returns,
/// workers run the flush and merges, and writers stall (with
/// [`observe::Event::Backpressure`]) only when the sealed-memtable backlog
/// hits the policy bound. With the default [`Scheduler::Inline`]
/// (crate::Scheduler::Inline) behaviour is byte-identical to the
/// historical write path.
#[derive(Clone)]
pub struct SharedLsmTree {
    // Declared before `inner` so the last clone drops the scheduler first:
    // shutdown drains every queued job while the tree is still alive.
    scheduler: Option<Arc<dyn SchedulerBackend>>,
    shard_id: usize,
    /// The tree's own sink, kept outside the lock so wait-state spans
    /// (lock wait, backpressure stall) can open without touching the tree.
    sink: SinkHandle,
    inner: Arc<RwLock<LsmTree>>,
}

impl SharedLsmTree {
    /// Wrap a tree for shared access, spawning the background worker pool
    /// if the tree's [`TreeOptions`](crate::TreeOptions) ask for one.
    pub fn new(tree: LsmTree) -> Self {
        let spec = tree.scheduler_spec();
        let sink = tree.sink().clone();
        let inner = Arc::new(RwLock::new(tree));
        let (scheduler, shard_id) = match spec.background_policy() {
            Some(policy) => {
                let sched: Arc<dyn SchedulerBackend> =
                    Arc::new(MergeScheduler::new(policy, sink.clone()));
                let id = sched.register(Arc::new(SharedTarget { tree: Arc::downgrade(&inner) }));
                (Some(sched), id)
            }
            None => (None, 0),
        };
        SharedLsmTree { scheduler, shard_id, sink, inner }
    }

    /// Insert or update `key` (exclusive).
    pub fn put(&self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.apply(Request::Put(key, payload.into()))
    }

    /// Delete `key` (exclusive).
    pub fn delete(&self, key: Key) -> Result<()> {
        self.apply(Request::Delete(key))
    }

    /// Apply a request (exclusive). Inline mode runs any triggered merge
    /// cascade before returning; background mode seals and hands off.
    ///
    /// The whole call is one [`SpanOp::put`] span whose children partition
    /// the latency: a [`SpanOp::lock_wait`] span covers each write-lock
    /// acquisition, a [`SpanOp::backpressure_wait`] span covers each
    /// admission-control stall, and (inline mode) the cascade span nests
    /// where the merge work happens. Time under none of them is the
    /// memtable insert itself.
    pub fn apply(&self, req: Request) -> Result<()> {
        let _put = self.sink.span(SpanOp::put());
        let Some(sched) = &self.scheduler else {
            let mut t = {
                let _lock_wait = self.sink.span(SpanOp::lock_wait());
                self.inner.write()
            };
            return t.apply_unspanned(req);
        };
        let max_imm = sched.max_imm_memtables();
        let mut req = Some(req);
        loop {
            // Admission control: the check holds the tree lock, the wait
            // does not — a stalled writer must never block the worker
            // that will unstall it.
            let outcome = {
                let mut t = {
                    let _lock_wait = self.sink.span(SpanOp::lock_wait());
                    self.inner.write()
                };
                let _tree_lock = lockorder::tree_lock_held();
                if t.mem_at_capacity() && t.imm_count() >= max_imm {
                    Err(t.imm_count())
                } else {
                    t.apply_buffered(req.take().expect("request not yet applied"))?;
                    let mut sealed = None;
                    // Seal only while the immutable queue has room;
                    // otherwise leave the memtable at capacity so the next
                    // write stalls at the admission check above — sealing
                    // past the bound would grow the backlog without ever
                    // exerting backpressure.
                    if t.mem_at_capacity() && t.imm_count() < max_imm {
                        t.seal_memtable();
                        sealed = Some(t.imm_count());
                    }
                    Ok(sealed)
                }
            };
            match outcome {
                Ok(Some(backlog)) => {
                    sched.notify(self.shard_id, backlog);
                    return Ok(());
                }
                Ok(None) => return Ok(()),
                Err(backlog) => {
                    sched.notify(self.shard_id, backlog);
                    let _stall = self.sink.span(SpanOp::backpressure_wait());
                    sched.wait_for_room(self.shard_id)?;
                }
            }
        }
    }

    /// Drain everything pending: queued flush/merge jobs in background
    /// mode (surfacing any background error), a no-op inline. Readers see
    /// all prior writes afterwards; the tree is quiescent.
    pub fn flush(&self) -> Result<()> {
        match &self.scheduler {
            Some(s) => s.drain(),
            None => self.with_write(LsmTree::drain_maintenance),
        }
    }

    /// Point lookup (shared — runs concurrently with other readers).
    ///
    /// The read-path counters in [`TreeStats`] are relaxed atomics, so this
    /// counts the lookup (and its block probes / Bloom skips) even though
    /// it only holds the read lock — concurrent gets no longer vanish from
    /// the statistics. Probed blocks go through the buffer cache (recency +
    /// hit/miss accounting) like any other lookup.
    pub fn get(&self, key: Key) -> Result<Option<Bytes>> {
        self.inner.read().get(key)
    }

    /// Point lookup without touching [`TreeStats`] (shared) — the
    /// documented no-stats path. Same block-probing and cache-touching
    /// contract as [`SharedLsmTree::get`]; see [`LsmTree::peek`].
    pub fn peek(&self, key: Key) -> Result<Option<Bytes>> {
        self.inner.read().peek(key)
    }

    /// Collect an ordered range scan (shared). The result is materialized
    /// because the underlying iterator borrows the tree.
    pub fn scan_collect(&self, lo: Key, hi: Key) -> Result<Vec<(Key, Bytes)>> {
        let guard = self.inner.read();
        guard.scan(lo, hi).collect()
    }

    /// Snapshot of the cost counters (shared).
    pub fn stats(&self) -> TreeStats {
        self.inner.read().stats().clone()
    }

    /// Current height (shared).
    pub fn height(&self) -> usize {
        self.inner.read().height()
    }

    /// Run a closure under the read lock (arbitrary read-only access).
    pub fn with_read<T>(&self, f: impl FnOnce(&LsmTree) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a closure under the write lock (checkpointing, policy swaps,
    /// batched writes).
    pub fn with_write<T>(&self, f: impl FnOnce(&mut LsmTree) -> T) -> T {
        f(&mut self.inner.write())
    }
}

impl SharedLsmTree {
    /// Apply every request in `batch` in order. `&self` so concurrent
    /// writer threads can batch without exclusive access; each request
    /// takes the shared lock (and honors backpressure) individually, so a
    /// large batch never starves readers.
    pub fn write_batch(&self, batch: crate::api::WriteBatch) -> Result<()> {
        for req in batch {
            self.apply(req)?;
        }
        Ok(())
    }
}

impl crate::api::WriteApi for SharedLsmTree {
    fn apply(&mut self, req: Request) -> Result<()> {
        SharedLsmTree::apply(self, req)
    }

    fn flush(&mut self) -> Result<()> {
        SharedLsmTree::flush(self)
    }

    fn write_batch(&mut self, batch: crate::api::WriteBatch) -> Result<()> {
        SharedLsmTree::write_batch(self, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::policy::PolicySpec;
    use crate::tree::TreeOptions;

    fn shared() -> SharedLsmTree {
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        let tree = LsmTree::with_mem_device(
            cfg,
            TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
            1 << 16,
        )
        .unwrap();
        SharedLsmTree::new(tree)
    }

    #[test]
    fn basic_shared_operations() {
        let t = shared();
        t.put(1, vec![1u8; 4]).unwrap();
        t.put(2, vec![2u8; 4]).unwrap();
        t.delete(1).unwrap();
        assert_eq!(t.get(1).unwrap(), None);
        assert_eq!(t.get(2).unwrap().as_deref(), Some(&[2u8; 4][..]));
        assert_eq!(t.stats().lookups(), 2, "shared gets are counted");
        assert_eq!(t.peek(2).unwrap().as_deref(), Some(&[2u8; 4][..]));
        assert_eq!(t.stats().lookups(), 2, "peek is the no-stats path");
        assert_eq!(t.scan_collect(0, 10).unwrap().len(), 1);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let t = shared();
        // Seed a stable prefix readers can always verify.
        for k in 0..2_000u64 {
            t.put(k, vec![(k % 251) as u8; 4]).unwrap();
        }
        let readers_ok = std::sync::atomic::AtomicBool::new(true);
        std::thread::scope(|s| {
            // Writer: churn a disjoint key range, forcing merges.
            s.spawn(|| {
                for k in 0..6_000u64 {
                    t.put(100_000 + (k * 17 % 5_000), vec![7u8; 4]).unwrap();
                    if k % 3 == 0 {
                        t.delete(100_000 + (k * 11 % 5_000)).unwrap();
                    }
                }
            });
            // Readers: the stable prefix must always be intact.
            for r in 0..3 {
                let readers_ok = &readers_ok;
                let t = &t;
                s.spawn(move || {
                    for i in 0..3_000u64 {
                        let k = (i * (r + 3)) % 2_000;
                        match t.get(k) {
                            Ok(Some(v)) if v[..] == [(k % 251) as u8; 4][..] => {}
                            other => {
                                eprintln!("reader saw {other:?} for key {k}");
                                readers_ok.store(false, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            }
        });
        assert!(readers_ok.load(std::sync::atomic::Ordering::Relaxed));
        // Every concurrent get was counted (3 readers × 3000 lookups).
        assert_eq!(t.stats().lookups(), 9_000);
        // Post-condition: everything consistent.
        crate::verify::check_tree(&t.inner.read(), true).unwrap();
    }

    #[test]
    fn clones_share_the_same_index() {
        let a = shared();
        let b = a.clone();
        a.put(5, vec![5u8; 4]).unwrap();
        assert_eq!(b.get(5).unwrap().as_deref(), Some(&[5u8; 4][..]));
        assert_eq!(b.stats().puts, 1);
    }

    #[test]
    fn with_write_allows_checkpoint_style_access() {
        let t = shared();
        t.put(9, vec![9u8; 4]).unwrap();
        let h = t.with_write(|tree| {
            tree.put(10, vec![1u8; 4]).unwrap();
            tree.height()
        });
        assert_eq!(h, 2);
        let count = t.with_read(|tree| tree.record_count());
        assert!(count >= 2);
    }
}
