//! Shared-access wrapper: concurrent readers, serialized writers.
//!
//! The paper treats concurrency control as orthogonal to its merge-policy
//! contribution (§II; the technical report sketches it). This module
//! provides the standard arrangement for the single-writer LSM design:
//! a reader-writer lock where modifications (and the merges they trigger)
//! hold the write lock, while any number of lookups and range scans
//! proceed concurrently under read locks. Merges under `ChooseBest` are
//! short and bounded (Theorem 2: ≤ δ(1/Γ+1)·K_i blocks), which is exactly
//! the availability argument partial merges were invented for — the write
//! lock is never held for a whole-level rewrite.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::Result;
use crate::record::{Key, Request};
use crate::stats::TreeStats;
use crate::tree::LsmTree;

/// A thread-safe handle to an [`LsmTree`]. Cloning shares the index.
#[derive(Clone)]
pub struct SharedLsmTree {
    inner: Arc<RwLock<LsmTree>>,
}

impl SharedLsmTree {
    /// Wrap a tree for shared access.
    pub fn new(tree: LsmTree) -> Self {
        SharedLsmTree { inner: Arc::new(RwLock::new(tree)) }
    }

    /// Insert or update `key` (exclusive).
    pub fn put(&self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.inner.write().put(key, payload)
    }

    /// Delete `key` (exclusive).
    pub fn delete(&self, key: Key) -> Result<()> {
        self.inner.write().delete(key)
    }

    /// Apply a request (exclusive).
    pub fn apply(&self, req: Request) -> Result<()> {
        self.inner.write().apply(req)
    }

    /// Point lookup (shared — runs concurrently with other readers).
    ///
    /// The read-path counters in [`TreeStats`] are relaxed atomics, so this
    /// counts the lookup (and its block probes / Bloom skips) even though
    /// it only holds the read lock — concurrent gets no longer vanish from
    /// the statistics. Probed blocks go through the buffer cache (recency +
    /// hit/miss accounting) like any other lookup.
    pub fn get(&self, key: Key) -> Result<Option<Bytes>> {
        self.inner.read().get(key)
    }

    /// Point lookup without touching [`TreeStats`] (shared) — the
    /// documented no-stats path. Same block-probing and cache-touching
    /// contract as [`SharedLsmTree::get`]; see [`LsmTree::peek`].
    pub fn peek(&self, key: Key) -> Result<Option<Bytes>> {
        self.inner.read().peek(key)
    }

    /// Collect an ordered range scan (shared). The result is materialized
    /// because the underlying iterator borrows the tree.
    pub fn scan_collect(&self, lo: Key, hi: Key) -> Result<Vec<(Key, Bytes)>> {
        let guard = self.inner.read();
        guard.scan(lo, hi).collect()
    }

    /// Snapshot of the cost counters (shared).
    pub fn stats(&self) -> TreeStats {
        self.inner.read().stats().clone()
    }

    /// Current height (shared).
    pub fn height(&self) -> usize {
        self.inner.read().height()
    }

    /// Run a closure under the read lock (arbitrary read-only access).
    pub fn with_read<T>(&self, f: impl FnOnce(&LsmTree) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a closure under the write lock (checkpointing, policy swaps,
    /// batched writes).
    pub fn with_write<T>(&self, f: impl FnOnce(&mut LsmTree) -> T) -> T {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::policy::PolicySpec;
    use crate::tree::TreeOptions;

    fn shared() -> SharedLsmTree {
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        let tree = LsmTree::with_mem_device(
            cfg,
            TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
            1 << 16,
        )
        .unwrap();
        SharedLsmTree::new(tree)
    }

    #[test]
    fn basic_shared_operations() {
        let t = shared();
        t.put(1, vec![1u8; 4]).unwrap();
        t.put(2, vec![2u8; 4]).unwrap();
        t.delete(1).unwrap();
        assert_eq!(t.get(1).unwrap(), None);
        assert_eq!(t.get(2).unwrap().as_deref(), Some(&[2u8; 4][..]));
        assert_eq!(t.stats().lookups(), 2, "shared gets are counted");
        assert_eq!(t.peek(2).unwrap().as_deref(), Some(&[2u8; 4][..]));
        assert_eq!(t.stats().lookups(), 2, "peek is the no-stats path");
        assert_eq!(t.scan_collect(0, 10).unwrap().len(), 1);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let t = shared();
        // Seed a stable prefix readers can always verify.
        for k in 0..2_000u64 {
            t.put(k, vec![(k % 251) as u8; 4]).unwrap();
        }
        let readers_ok = std::sync::atomic::AtomicBool::new(true);
        std::thread::scope(|s| {
            // Writer: churn a disjoint key range, forcing merges.
            s.spawn(|| {
                for k in 0..6_000u64 {
                    t.put(100_000 + (k * 17 % 5_000), vec![7u8; 4]).unwrap();
                    if k % 3 == 0 {
                        t.delete(100_000 + (k * 11 % 5_000)).unwrap();
                    }
                }
            });
            // Readers: the stable prefix must always be intact.
            for r in 0..3 {
                let readers_ok = &readers_ok;
                let t = &t;
                s.spawn(move || {
                    for i in 0..3_000u64 {
                        let k = (i * (r + 3)) % 2_000;
                        match t.get(k) {
                            Ok(Some(v)) if v[..] == [(k % 251) as u8; 4][..] => {}
                            other => {
                                eprintln!("reader saw {other:?} for key {k}");
                                readers_ok.store(false, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            }
        });
        assert!(readers_ok.load(std::sync::atomic::Ordering::Relaxed));
        // Every concurrent get was counted (3 readers × 3000 lookups).
        assert_eq!(t.stats().lookups(), 9_000);
        // Post-condition: everything consistent.
        crate::verify::check_tree(&t.inner.read(), true).unwrap();
    }

    #[test]
    fn clones_share_the_same_index() {
        let a = shared();
        let b = a.clone();
        a.put(5, vec![5u8; 4]).unwrap();
        assert_eq!(b.get(5).unwrap().as_deref(), Some(&[5u8; 4][..]));
        assert_eq!(b.stats().puts, 1);
    }

    #[test]
    fn with_write_allows_checkpoint_style_access() {
        let t = shared();
        t.put(9, vec![9u8; 4]).unwrap();
        let h = t.with_write(|tree| {
            tree.put(10, vec![1u8; 4]).unwrap();
            tree.height()
        });
        assert_eq!(h, 2);
        let count = t.with_read(|tree| tree.record_count());
        assert!(count >= 2);
    }
}
