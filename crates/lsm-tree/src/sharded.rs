//! Sharded concurrent front-end: N key-hash shards, each a full tree.
//!
//! [`crate::shared::SharedLsmTree`] gives the single-writer design safe
//! concurrent access, but every modification still serializes on one write
//! lock and every merge still walks one (tall) tree. This module scales the
//! front-end the way the paper's availability argument suggests: since
//! `ChooseBest` merges are short and bounded (Theorem 2), running N
//! *independent* trees — each over its own device region, with its own
//! write lock, WAL, and a 1/N slice of the cache budget — keeps every
//! shard's write stalls bounded while writers to different shards never
//! contend at all. Each shard also holds ~1/N of the keys, so it stabilises
//! at a lower height (fewer levels ⇒ fewer merge hops per record), which
//! reduces write amplification even on a single core.
//!
//! Keys are routed with a fixed splittable hash (SplitMix64 finalizer), so
//! the key→shard map is deterministic across restarts — a WAL written by
//! shard `i` replays into shard `i`. Range scans fan out to every shard and
//! merge the ordered per-shard results; point operations touch exactly one
//! shard. [`ShardedLsmTree::stats`] folds the per-shard [`TreeStats`] into
//! one logical view with [`TreeStats::absorb`].
//!
//! Observability: the handle emits [`Event::ShardRouted`] for every routed
//! request, and each shard's tree reports through a tagging sink that
//! follows every `MergeFinish` with an [`Event::ShardMergeFinish`] carrying
//! the shard index — so a single sink sees which shard is merging without
//! the `Event` type growing a shard field on every variant.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use observe::{Event, EventSink, Json, SinkHandle};
use parking_lot::{Condvar, Mutex, RwLock};
use sim_ssd::{BlockDevice, DeviceError};

use crate::config::{CommitMode, LsmConfig};
use crate::error::Result;
use crate::lockorder;
use crate::record::{Key, Request};
use crate::scheduler::{MaintainTarget, MergeScheduler, SchedulerBackend};
use crate::stats::TreeStats;
use crate::tree::{LsmTree, TreeOptions};
use crate::wal::{WalFaultPlan, WriteAheadLog};

/// SplitMix64 finalizer — a fixed, high-quality 64→64 bit mixer. Routing
/// must be deterministic across runs (WAL replay depends on it), so no
/// per-process seeding.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Forwards every event of one shard's tree to the user sink, and follows
/// each [`Event::MergeFinish`] with a shard-tagged
/// [`Event::ShardMergeFinish`].
struct ShardTagSink {
    shard: usize,
    inner: Arc<dyn EventSink>,
}

impl EventSink for ShardTagSink {
    fn emit(&self, event: &Event) {
        self.inner.emit(event);
        if let Event::MergeFinish { target_level, full, writes, .. } = *event {
            self.inner.emit(&Event::ShardMergeFinish {
                shard: self.shard,
                target_level,
                full,
                writes,
            });
        }
    }

    fn span_begin(&self, op: &observe::SpanOp) -> Option<observe::SpanId> {
        self.inner.span_begin(&op.with_shard(self.shard))
    }

    fn span_end(&self, id: observe::SpanId, op: &observe::SpanOp) {
        self.inner.span_end(id, &op.with_shard(self.shard));
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// One shard: an independent tree plus its (optional) write-ahead log.
struct Shard {
    tree: LsmTree,
    wal: Option<WriteAheadLog>,
}

/// The scheduler's handle onto one shard. Holds a `Weak` on the shard
/// vector so the scheduler never keeps the trees alive.
struct ShardTarget {
    shards: Weak<Vec<RwLock<Shard>>>,
    idx: usize,
}

impl MaintainTarget for ShardTarget {
    fn maintenance_step(&self) -> Result<bool> {
        match self.shards.upgrade() {
            Some(shards) => {
                let mut guard = shards[self.idx].write();
                let _tree_lock = lockorder::tree_lock_held();
                guard.tree.maintenance_step()
            }
            None => Ok(false),
        }
    }

    fn backlog(&self) -> usize {
        self.shards.upgrade().map_or(0, |s| s[self.idx].read().tree.imm_count())
    }

    fn has_pending(&self) -> bool {
        self.shards.upgrade().is_some_and(|s| s[self.idx].read().tree.maintenance_pending())
    }
}

/// Leader/follower group-commit state of one shard (only consulted under
/// [`CommitMode::Group`]). Writers append under the shard lock, release
/// it, then rendezvous here: the first waiter becomes the leader and
/// issues one fsync covering every append buffered so far; the rest ride
/// along on the leader's fsync.
struct GroupCommit {
    state: Mutex<GroupState>,
    cv: Condvar,
}

#[derive(Default)]
struct GroupState {
    /// WAL byte offset known crash-durable.
    synced_seq: u64,
    /// A leader is currently fsyncing.
    leader_running: bool,
    /// A leader's fsync failed. The WAL underneath is poisoned (see
    /// [`WriteAheadLog::sync`]), so every rendezvous participant whose
    /// offset is not already durable must error — a follower may never be
    /// acked on the strength of an fsync that failed. Cleared only by
    /// recovery (a fresh handle), mirroring the WAL's own poison.
    poisoned: bool,
}

impl GroupCommit {
    fn new() -> Self {
        GroupCommit { state: Mutex::new(GroupState::default()), cv: Condvar::new() }
    }
}

/// A thread-safe, sharded handle over N independent [`LsmTree`]s. Cloning
/// shares the shards.
///
/// With [`Scheduler::background`](crate::Scheduler::background) in the
/// tree options the handle owns a [`MergeScheduler`]: writers seal full
/// memtables and return, the worker pool runs flushes and merges, and
/// writers stall only at the sealed-memtable backlog bound. With
/// [`CommitMode::Group`] N concurrent writers to a WAL-backed shard share
/// one fsync (see [`GroupCommit`] internals); with
/// [`CommitMode::PerRequest`] every apply fsyncs before returning.
#[derive(Clone)]
pub struct ShardedLsmTree {
    // Declared before `shards` so the last clone drops (and drains) the
    // scheduler while the shard trees are still alive.
    scheduler: Option<Arc<dyn SchedulerBackend>>,
    shards: Arc<Vec<RwLock<Shard>>>,
    group: Arc<Vec<GroupCommit>>,
    commit: CommitMode,
    /// User sink: receives `ShardRouted` from the router (the per-shard
    /// trees report through their own tagging sinks).
    sink: SinkHandle,
}

impl ShardedLsmTree {
    /// Build N shards, each over a fresh in-memory simulated SSD of
    /// `device_blocks_per_shard` blocks. `cfg.cache_blocks` is the *total*
    /// budget: each shard gets `max(1, cache_blocks / shards)`. The sink in
    /// `opts` becomes the user sink described at the module level.
    pub fn with_mem_devices(
        cfg: LsmConfig,
        opts: TreeOptions,
        shards: usize,
        device_blocks_per_shard: u64,
    ) -> Result<Self> {
        Self::build(cfg, opts, shards, device_blocks_per_shard, None)
    }

    /// Like [`ShardedLsmTree::with_mem_devices`], plus one write-ahead log
    /// per shard (`shard-<i>.wal` under `wal_dir`). The logs are never
    /// truncated by this handle — [`ShardedLsmTree::recover_with_wal`]
    /// rebuilds every shard by replaying its log in full.
    pub fn with_wal_dir(
        cfg: LsmConfig,
        opts: TreeOptions,
        shards: usize,
        device_blocks_per_shard: u64,
        wal_dir: impl AsRef<Path>,
    ) -> Result<Self> {
        Self::build(cfg, opts, shards, device_blocks_per_shard, Some(wal_dir.as_ref()))
    }

    /// Recover a WAL-backed sharded tree: fresh shards, then replay each
    /// shard's log (its intact prefix) back into that same shard. Routing
    /// is deterministic, so every replayed request lands where it was
    /// originally applied.
    pub fn recover_with_wal(
        cfg: LsmConfig,
        opts: TreeOptions,
        shards: usize,
        device_blocks_per_shard: u64,
        wal_dir: impl AsRef<Path>,
    ) -> Result<Self> {
        let user_sink = opts.sink.clone();
        let this = Self::build_trees(cfg, opts, shards, device_blocks_per_shard)?;
        for (i, slot) in this.shards.iter().enumerate() {
            let (wal, requests) =
                WriteAheadLog::open_and_replay(Self::wal_path(wal_dir.as_ref(), i))?;
            let replayed = requests.len() as u64;
            let mut shard = slot.write();
            // Span through the shard's tagging sink so replay work carries
            // the shard index.
            let span = shard.tree.sink().span(observe::SpanOp::recovery());
            for req in requests {
                shard.tree.apply(req)?;
            }
            drop(span);
            shard.wal = Some(wal);
            user_sink.emit_with(|| Event::Recovery { replayed });
        }
        Ok(this)
    }

    pub(crate) fn wal_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard}.wal"))
    }

    fn build(
        cfg: LsmConfig,
        opts: TreeOptions,
        shards: usize,
        device_blocks_per_shard: u64,
        wal_dir: Option<&Path>,
    ) -> Result<Self> {
        let this = Self::build_trees(cfg, opts, shards, device_blocks_per_shard)?;
        if let Some(dir) = wal_dir {
            for (i, slot) in this.shards.iter().enumerate() {
                slot.write().wal = Some(WriteAheadLog::create(Self::wal_path(dir, i))?);
            }
        }
        Ok(this)
    }

    fn build_trees(
        cfg: LsmConfig,
        opts: TreeOptions,
        shards: usize,
        device_blocks_per_shard: u64,
    ) -> Result<Self> {
        assert!(shards >= 1, "need at least one shard");
        let devices = (0..shards)
            .map(|_| {
                Arc::new(sim_ssd::MemDevice::with_block_size(
                    device_blocks_per_shard,
                    cfg.block_size,
                )) as Arc<dyn BlockDevice>
            })
            .collect();
        Self::with_devices(cfg, opts, devices)
    }

    /// Build one shard per entry of `devices` — the constructor to use when
    /// shards should run over decorated devices ([`sim_ssd::LatencyDevice`],
    /// [`sim_ssd::FaultDevice`], file-backed, ...). Shard `i` owns
    /// `devices[i]`; cache budget splits as in
    /// [`ShardedLsmTree::with_mem_devices`].
    pub fn with_devices(
        cfg: LsmConfig,
        opts: TreeOptions,
        devices: Vec<Arc<dyn BlockDevice>>,
    ) -> Result<Self> {
        Self::with_backend(cfg, opts, devices, None, None)
    }

    /// The full-control constructor: explicit devices, an optional WAL
    /// directory, and an optional externally built [`SchedulerBackend`].
    /// The concurrency-torture harness uses it to run shards over
    /// [`sim_ssd::FaultDevice`]s with a [`crate::sim::SimExecutor`] making
    /// every maintenance decision from a seed; passing `None` for
    /// `scheduler` falls back to a [`MergeScheduler`] worker pool when the
    /// tree options ask for one. An injected backend drives the write path
    /// exactly as a worker pool would (seal-and-return, backpressure at
    /// the bound) regardless of `opts.scheduler`.
    pub fn with_backend(
        cfg: LsmConfig,
        opts: TreeOptions,
        devices: Vec<Arc<dyn BlockDevice>>,
        wal_dir: Option<&Path>,
        scheduler: Option<Arc<dyn SchedulerBackend>>,
    ) -> Result<Self> {
        let shards = devices.len();
        assert!(shards >= 1, "need at least one shard");
        let user_sink = opts.sink.clone();
        let mut shard_cfg = cfg;
        shard_cfg.cache_blocks = (shard_cfg.cache_blocks / shards).max(1);
        let mut vec = Vec::with_capacity(shards);
        for (i, device) in devices.into_iter().enumerate() {
            let mut shard_opts = opts.clone();
            shard_opts.sink = match user_sink.as_arc() {
                Some(inner) => SinkHandle::of(ShardTagSink { shard: i, inner }),
                None => SinkHandle::none(),
            };
            let tree = LsmTree::new(shard_cfg.clone(), shard_opts, device)?;
            let wal = match wal_dir {
                Some(dir) => Some(WriteAheadLog::create(Self::wal_path(dir, i))?),
                None => None,
            };
            vec.push(RwLock::new(Shard { tree, wal }));
        }
        let shards_arc = Arc::new(vec);
        let scheduler: Option<Arc<dyn SchedulerBackend>> = scheduler.or_else(|| {
            opts.scheduler.background_policy().map(|policy| {
                Arc::new(MergeScheduler::new(policy, user_sink.clone()))
                    as Arc<dyn SchedulerBackend>
            })
        });
        if let Some(sched) = &scheduler {
            for idx in 0..shards {
                let id = sched
                    .register(Arc::new(ShardTarget { shards: Arc::downgrade(&shards_arc), idx }));
                debug_assert_eq!(id, idx, "scheduler ids follow shard order");
            }
        }
        let group = Arc::new((0..shards).map(|_| GroupCommit::new()).collect::<Vec<_>>());
        Ok(ShardedLsmTree {
            scheduler,
            shards: shards_arc,
            group,
            commit: opts.commit,
            sink: user_sink,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard serves `key`. Deterministic across processes — WAL
    /// replay and the equivalence tests rely on it.
    pub fn shard_of(&self, key: Key) -> usize {
        // Multiply-shift maps the hash uniformly onto [0, n) without the
        // modulo bias of `hash % n`.
        let h = splitmix64(key);
        ((u128::from(h) * self.shards.len() as u128) >> 64) as usize
    }

    /// Insert or update `key` (exclusive on its shard only).
    pub fn put(&self, key: Key, payload: impl Into<Bytes>) -> Result<()> {
        self.apply(Request::Put(key, payload.into()))
    }

    /// Delete `key` (exclusive on its shard only).
    pub fn delete(&self, key: Key) -> Result<()> {
        self.apply(Request::Delete(key))
    }

    /// Apply a request to the shard that owns its key. If the shard is
    /// WAL-backed the request is logged before it is applied, with the
    /// configured [`CommitMode`] deciding when the log bytes become
    /// durable. In background-scheduler mode a full memtable is sealed and
    /// handed to the worker pool instead of merged inline; the writer
    /// stalls only when the sealed backlog hits the policy bound.
    pub fn apply(&self, req: Request) -> Result<()> {
        let key = match &req {
            Request::Put(k, _) => *k,
            Request::Delete(k) => *k,
        };
        let idx = self.shard_of(key);
        self.sink.emit_with(|| Event::ShardRouted { shard: idx });
        self.apply_routed(idx, req, true)
    }

    /// The routed write path. `group_wait` is false for
    /// [`WriteApi::write_batch`](crate::WriteApi), which defers the group
    /// fsync to one rendezvous per batch, and for the concurrency-torture
    /// harness, which acks group writes from its own seeded sync steps.
    pub(crate) fn apply_routed(&self, idx: usize, req: Request, group_wait: bool) -> Result<()> {
        /// What happened under the shard lock.
        enum Applied {
            Done {
                group_seq: Option<u64>,
                sealed_backlog: Option<usize>,
            },
            /// Backlog at the bound; wait (lock released) and retry.
            Stall(usize),
        }
        // One put span covers the whole front-end write; its children
        // (lock wait, WAL append, group-commit wait, backpressure stall,
        // inline cascade) partition the latency, and uncovered time is the
        // memtable insert itself.
        let _put = self.sink.span(observe::SpanOp::put().with_shard(idx));
        let mut req = Some(req);
        loop {
            let outcome = {
                let mut guard = {
                    let _lock_wait = self.sink.span(observe::SpanOp::lock_wait().with_shard(idx));
                    self.shards[idx].write()
                };
                let _tree_lock = lockorder::tree_lock_held();
                let shard = &mut *guard;
                let stall = self.scheduler.as_ref().is_some_and(|s| {
                    shard.tree.mem_at_capacity() && shard.tree.imm_count() >= s.max_imm_memtables()
                });
                if stall {
                    Applied::Stall(shard.tree.imm_count())
                } else {
                    let r = req.take().expect("request applied exactly once");
                    let mut group_seq = None;
                    if let Some(wal) = shard.wal.as_mut() {
                        let _span = shard.tree.sink().span(observe::SpanOp::wal_append());
                        let bytes = wal.append(&r)? as u64;
                        match self.commit {
                            CommitMode::PerRequest => wal.sync()?,
                            CommitMode::Group => group_seq = Some(wal.len_bytes()),
                            CommitMode::Buffered => {}
                        }
                        // `synced` reports durable-by-return: group-commit
                        // appends are fsynced before apply returns.
                        let synced = self.commit != CommitMode::Buffered;
                        self.sink.emit_with(|| Event::WalAppend { bytes, synced });
                    }
                    let mut sealed_backlog = None;
                    if let Some(s) = &self.scheduler {
                        shard.tree.apply_buffered(r)?;
                        // Seal only while the immutable queue has room;
                        // otherwise leave the memtable at capacity so the
                        // next write stalls at the admission check above —
                        // sealing past the bound would grow the backlog
                        // without ever exerting backpressure.
                        if shard.tree.mem_at_capacity()
                            && shard.tree.imm_count() < s.max_imm_memtables()
                        {
                            shard.tree.seal_memtable();
                            sealed_backlog = Some(shard.tree.imm_count());
                        }
                    } else {
                        // The put span is already open here; the tree's own
                        // wrapper would nest a second one.
                        shard.tree.apply_unspanned(r)?;
                    }
                    Applied::Done { group_seq, sealed_backlog }
                }
            };
            // Everything below runs with the shard lock released — the
            // scheduler lock-order rule, and fsync-wait off the lock.
            match outcome {
                Applied::Done { group_seq, sealed_backlog } => {
                    if let (Some(sched), Some(backlog)) = (&self.scheduler, sealed_backlog) {
                        sched.notify(idx, backlog);
                    }
                    if let (Some(seq), true) = (group_seq, group_wait) {
                        self.group_commit_wait(idx, seq)?;
                    }
                    return Ok(());
                }
                Applied::Stall(backlog) => {
                    let sched =
                        self.scheduler.as_ref().expect("stall only occurs in background mode");
                    sched.notify(idx, backlog);
                    let _stall =
                        self.sink.span(observe::SpanOp::backpressure_wait().with_shard(idx));
                    sched.wait_for_room(idx)?;
                }
            }
        }
    }

    /// Wait until WAL offset `my_seq` of `idx` is fsynced: become the
    /// leader (one fsync covers every append buffered so far) or ride on
    /// the current leader's fsync. Never called with the shard lock held.
    ///
    /// Failure contract: when a leader's fsync fails, *every* participant
    /// whose offset is not already durable errors out — the leader with
    /// the fsync error itself, followers with [`DeviceError::Poisoned`].
    /// The WAL poisons itself on the failed fsync (see
    /// [`WriteAheadLog::sync`]), so a follower retrying leadership would
    /// only dress the same failure up as success-after-the-fact; instead
    /// the rendezvous stays poisoned until recovery builds a fresh handle.
    fn group_commit_wait(&self, idx: usize, my_seq: u64) -> Result<()> {
        lockorder::assert_no_tree_lock("ShardedLsmTree::group_commit_wait");
        // Covers the whole rendezvous — follower waits and the leader's
        // fsync alike. A child of the put span under `apply`; a root span
        // for `write_batch`'s one-rendezvous-per-batch calls.
        let _wait = self.sink.span(observe::SpanOp::group_commit_wait().with_shard(idx));
        let gc = &self.group[idx];
        let mut waited = Duration::ZERO;
        let mut s = gc.state.lock();
        loop {
            if s.synced_seq >= my_seq {
                return Ok(());
            }
            if s.poisoned {
                return Err(DeviceError::Poisoned.into());
            }
            if s.leader_running {
                // A follower stuck here past the watchdog budget means the
                // rendezvous hung: panic with the scheduler state rather
                // than wait forever (see `scheduler::set_watchdog_timeout_ms`).
                match crate::scheduler::watchdog_timeout() {
                    None => s = gc.cv.wait(s),
                    Some(budget) => {
                        let slice =
                            budget.min(Duration::from_millis(50)).max(Duration::from_millis(1));
                        let (guard, res) = gc.cv.wait_timeout(s, slice);
                        s = guard;
                        waited = if res.timed_out() { waited + slice } else { Duration::ZERO };
                        if waited >= budget {
                            drop(s);
                            crate::scheduler::watchdog_fire(
                                "group-commit rendezvous",
                                self.scheduler_section_json(),
                            );
                        }
                    }
                }
                continue;
            }
            s.leader_running = true;
            drop(s);
            let res = {
                let mut guard = self.shards[idx].write();
                let _tree_lock = lockorder::tree_lock_held();
                match guard.wal.as_mut() {
                    Some(wal) => wal.sync().map(|()| wal.synced_len()),
                    // WAL vanished (no-WAL build): nothing to make durable.
                    None => Ok(u64::MAX),
                }
            };
            s = gc.state.lock();
            s.leader_running = false;
            match res {
                Ok(synced) => {
                    s.synced_seq = s.synced_seq.max(synced);
                    gc.cv.notify_all();
                }
                Err(e) => {
                    // Poison the rendezvous so every waiting (and future)
                    // follower errors instead of retrying leadership
                    // against a WAL that just poisoned itself.
                    s.poisoned = true;
                    gc.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// One seeded group-sync step for the concurrency-torture harness:
    /// unconditionally act as the group-commit leader for `idx` — fsync
    /// the WAL, publish the new durable offset, wake any followers — and
    /// return the offset now known durable. An fsync failure poisons the
    /// rendezvous exactly like a leader failure in
    /// [`ShardedLsmTree::group_commit_wait`].
    pub fn group_sync_step(&self, idx: usize) -> Result<u64> {
        let gc = &self.group[idx];
        {
            let s = gc.state.lock();
            if s.poisoned {
                return Err(DeviceError::Poisoned.into());
            }
        }
        let res = {
            let mut guard = self.shards[idx].write();
            let _tree_lock = lockorder::tree_lock_held();
            match guard.wal.as_mut() {
                Some(wal) => wal.sync().map(|()| wal.synced_len()),
                None => Ok(u64::MAX),
            }
        };
        let mut s = gc.state.lock();
        match res {
            Ok(synced) => {
                s.synced_seq = s.synced_seq.max(synced);
                gc.cv.notify_all();
                Ok(synced)
            }
            Err(e) => {
                s.poisoned = true;
                gc.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Point lookup (shared on its shard; concurrent with everything on
    /// other shards). Counted in [`TreeStats`] like [`LsmTree::get`].
    pub fn get(&self, key: Key) -> Result<Option<Bytes>> {
        let idx = self.shard_of(key);
        self.sink.emit_with(|| Event::ShardRouted { shard: idx });
        self.shards[idx].read().tree.get(key)
    }

    /// Point lookup without touching [`TreeStats`] — the no-stats path,
    /// mirroring [`LsmTree::peek`].
    pub fn peek(&self, key: Key) -> Result<Option<Bytes>> {
        self.shards[self.shard_of(key)].read().tree.peek(key)
    }

    /// Ordered scan of the live keys in `[lo, hi]`, merged across shards.
    /// Hash routing scatters a key range over every shard, so the scan
    /// fans out: each shard's ordered scan is collected under its read
    /// lock, then the (disjoint) results are merged into one ordered run.
    ///
    /// Shards are visited one after another, so the result is not an
    /// atomic snapshot across shards — same contract as interleaved
    /// readers on [`crate::shared::SharedLsmTree`], per shard.
    pub fn scan_collect(&self, lo: Key, hi: Key) -> Result<Vec<(Key, Bytes)>> {
        let mut runs: Vec<Vec<(Key, Bytes)>> = Vec::with_capacity(self.shards.len());
        for slot in self.shards.iter() {
            let shard = slot.read();
            let _span = shard.tree.sink().span(observe::SpanOp::scan());
            runs.push(shard.tree.scan(lo, hi).collect::<Result<_>>()?);
        }
        Ok(merge_ordered(runs))
    }

    /// Aggregated counters: every shard's [`TreeStats`] absorbed into one.
    pub fn stats(&self) -> TreeStats {
        let mut total = TreeStats::default();
        for slot in self.shards.iter() {
            total.absorb(slot.read().tree.stats());
        }
        total
    }

    /// Per-shard snapshots, for callers that care about balance.
    pub fn shard_stats(&self) -> Vec<TreeStats> {
        self.shards.iter().map(|s| s.read().tree.stats().clone()).collect()
    }

    /// Height of the tallest shard.
    pub fn height(&self) -> usize {
        self.shards.iter().map(|s| s.read().tree.height()).max().unwrap_or(0)
    }

    /// Live records across all shards.
    pub fn record_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read().tree.record_count()).sum()
    }

    /// Fsync every shard's WAL (no-op for shards without one).
    pub fn sync_wals(&self) -> Result<()> {
        for slot in self.shards.iter() {
            if let Some(wal) = slot.write().wal.as_mut() {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Total fsyncs issued across every shard's WAL — the group-commit
    /// economy metric (N writers sharing a leader's fsync count once).
    pub fn wal_fsyncs(&self) -> u64 {
        self.shards.iter().map(|s| s.read().wal.as_ref().map_or(0, WriteAheadLog::syncs)).sum()
    }

    /// Appended WAL length per shard, in bytes (0 without a WAL). In
    /// group-commit mode this is the offset a just-applied request must
    /// see durable before it may be acked.
    pub fn wal_lens(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.read().wal.as_ref().map_or(0, WriteAheadLog::len_bytes))
            .collect()
    }

    /// Crash-durable WAL length per shard, in bytes (0 without a WAL).
    pub fn wal_synced_lens(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.read().wal.as_ref().map_or(0, WriteAheadLog::synced_len))
            .collect()
    }

    /// Whether `shard`'s WAL is poisoned by a failed fsync (always false
    /// without a WAL).
    pub fn wal_poisoned(&self, shard: usize) -> bool {
        self.shards[shard].read().wal.as_ref().is_some_and(WriteAheadLog::is_poisoned)
    }

    /// Arm deterministic fsync-fault injection on `shard`'s WAL (no-op
    /// without a WAL). See [`WalFaultPlan`].
    pub fn set_wal_fault_plan(&self, shard: usize, plan: WalFaultPlan, seed: u64) {
        if let Some(wal) = self.shards[shard].write().wal.as_mut() {
            wal.set_fault_plan(plan, seed);
        }
    }

    /// The post-mortem `scheduler` section: the backend's job-queue
    /// snapshot (queued/running/backlogs/...) plus one `rendezvous` entry
    /// per shard describing the open group-commit state. Also what the
    /// group-commit watchdog dumps when a rendezvous hangs.
    pub fn scheduler_section_json(&self) -> Json {
        let mut pairs = match self.scheduler.as_ref().map(|s| s.snapshot().to_json()) {
            Some(Json::Obj(pairs)) => pairs,
            _ => vec![("backend".to_string(), Json::from("inline"))],
        };
        let rendezvous = Json::arr(self.group.iter().enumerate().map(|(i, gc)| {
            let (appended, synced) = {
                let shard = self.shards[i].read();
                shard.wal.as_ref().map_or((0, 0), |w| (w.len_bytes(), w.synced_len()))
            };
            let s = gc.state.lock();
            Json::obj([
                ("shard", Json::from(i)),
                ("synced_seq", Json::from(s.synced_seq)),
                ("leader_running", Json::from(s.leader_running)),
                ("poisoned", Json::from(s.poisoned)),
                ("wal_appended", Json::from(appended)),
                ("wal_synced", Json::from(synced)),
            ])
        }));
        pairs.push(("rendezvous".to_string(), rendezvous));
        Json::Obj(pairs)
    }

    /// Drain everything pending: background flush/merge jobs (surfacing
    /// the first background error) or inline leftover maintenance, then
    /// fsync every WAL. Afterwards the trees are quiescent and every
    /// applied request is crash-durable.
    pub fn flush(&self) -> Result<()> {
        match &self.scheduler {
            Some(s) => s.drain()?,
            None => {
                for slot in self.shards.iter() {
                    slot.write().tree.drain_maintenance()?;
                }
            }
        }
        self.sync_wals()
    }

    /// Run a closure under one shard's read lock.
    pub fn with_shard_read<T>(&self, shard: usize, f: impl FnOnce(&LsmTree) -> T) -> T {
        f(&self.shards[shard].read().tree)
    }

    /// Run every shard through the full structural verifier
    /// ([`crate::verify::check_tree`]); `deep` additionally re-reads every
    /// block. Errors are tagged with the failing shard.
    pub fn deep_verify(&self, deep: bool) -> std::result::Result<(), String> {
        for (i, slot) in self.shards.iter().enumerate() {
            let shard = slot.read();
            crate::verify::check_tree(&shard.tree, deep).map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

impl ShardedLsmTree {
    /// Apply the batch in order; under [`CommitMode::Group`] the whole
    /// batch commits with one group-commit rendezvous per touched shard
    /// instead of one per request. `&self` so concurrent writer threads
    /// can batch without exclusive access.
    pub fn write_batch(&self, batch: crate::api::WriteBatch) -> Result<()> {
        let mut last_seq: Vec<Option<u64>> = vec![None; self.shards.len()];
        for req in batch {
            let key = match &req {
                Request::Put(k, _) => *k,
                Request::Delete(k) => *k,
            };
            let idx = self.shard_of(key);
            self.sink.emit_with(|| Event::ShardRouted { shard: idx });
            self.apply_routed(idx, req, false)?;
            if self.commit == CommitMode::Group {
                last_seq[idx] =
                    Some(self.shards[idx].read().wal.as_ref().map_or(0, |w| w.len_bytes()));
            }
        }
        for (idx, seq) in last_seq.into_iter().enumerate() {
            if let Some(seq) = seq {
                self.group_commit_wait(idx, seq)?;
            }
        }
        Ok(())
    }
}

impl crate::api::WriteApi for ShardedLsmTree {
    fn apply(&mut self, req: Request) -> Result<()> {
        ShardedLsmTree::apply(self, req)
    }

    fn flush(&mut self) -> Result<()> {
        ShardedLsmTree::flush(self)
    }

    fn write_batch(&mut self, batch: crate::api::WriteBatch) -> Result<()> {
        ShardedLsmTree::write_batch(self, batch)
    }
}

/// Merge per-shard ordered runs (disjoint key sets) into one ordered run.
fn merge_ordered(mut runs: Vec<Vec<(Key, Bytes)>>) -> Vec<(Key, Bytes)> {
    match runs.len() {
        0 => Vec::new(),
        1 => runs.pop().unwrap(),
        _ => {
            let total = runs.iter().map(Vec::len).sum();
            let mut heads: Vec<usize> = vec![0; runs.len()];
            let mut out = Vec::with_capacity(total);
            loop {
                let mut best: Option<usize> = None;
                for (r, run) in runs.iter().enumerate() {
                    if heads[r] < run.len()
                        && best.is_none_or(|b| run[heads[r]].0 < runs[b][heads[b]].0)
                    {
                        best = Some(r);
                    }
                }
                match best {
                    Some(r) => {
                        out.push(runs[r][heads[r]].clone());
                        heads[r] += 1;
                    }
                    None => break,
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use observe::CountingSink;

    fn small_cfg() -> LsmConfig {
        LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        }
    }

    fn sharded(n: usize) -> ShardedLsmTree {
        ShardedLsmTree::with_mem_devices(
            small_cfg(),
            TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
            n,
            1 << 16,
        )
        .unwrap()
    }

    #[test]
    fn routing_is_total_and_deterministic() {
        let t = sharded(4);
        let mut hit = [0u64; 4];
        for k in 0..10_000u64 {
            let s = t.shard_of(k);
            assert_eq!(s, t.shard_of(k), "routing must be deterministic");
            hit[s] += 1;
        }
        // The hash spreads a dense key range roughly evenly.
        for (i, &n) in hit.iter().enumerate() {
            assert!(n > 1_500, "shard {i} got only {n}/10000 keys");
        }
    }

    #[test]
    fn basic_ops_and_merged_scans() {
        let t = sharded(4);
        for k in 0..3_000u64 {
            t.put(k, vec![(k % 251) as u8; 4]).unwrap();
        }
        for k in (0..3_000u64).step_by(3) {
            t.delete(k).unwrap();
        }
        for k in 0..3_000u64 {
            let got = t.get(k).unwrap();
            if k % 3 == 0 {
                assert_eq!(got, None, "deleted key {k}");
            } else {
                assert_eq!(got.as_deref(), Some(&vec![(k % 251) as u8; 4][..]), "key {k}");
            }
        }
        // The merged scan is ordered, complete, and tombstone-free.
        let scan = t.scan_collect(0, 2_999).unwrap();
        assert_eq!(scan.len(), 2_000);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0), "scan must be ordered");
        assert!(scan.iter().all(|(k, _)| k % 3 != 0));
        // Aggregated stats see every routed request.
        let s = t.stats();
        assert_eq!(s.puts, 3_000);
        assert_eq!(s.deletes, 1_000);
        assert_eq!(s.lookups(), 3_000);
        // Physical records: live keys plus not-yet-compacted tombstones.
        assert!(t.record_count() >= 2_000);
        t.deep_verify(true).unwrap();
    }

    #[test]
    fn equivalent_to_independent_trees_on_the_same_routing() {
        // A sharded tree must behave exactly like N independent trees fed
        // the same routed requests: same per-shard stats, same contents.
        let n = 4;
        let t = sharded(n);
        let mut solo: Vec<LsmTree> = (0..n)
            .map(|_| {
                let mut cfg = small_cfg();
                cfg.cache_blocks = (cfg.cache_blocks / n).max(1);
                LsmTree::with_mem_device(
                    cfg,
                    TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
                    1 << 16,
                )
                .unwrap()
            })
            .collect();
        let mut x = 0xdead_beefu64;
        for _ in 0..4_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 16) % 1_500;
            let req = if x.is_multiple_of(5) {
                Request::Delete(k)
            } else {
                Request::Put(k, Bytes::from(vec![(k % 251) as u8; 4]))
            };
            solo[t.shard_of(k)].apply(req.clone()).unwrap();
            t.apply(req).unwrap();
        }
        for (i, solo_tree) in solo.iter().enumerate() {
            let shard_stats = t.with_shard_read(i, |tree| tree.stats().clone());
            assert_eq!(&shard_stats, solo_tree.stats(), "shard {i} stats diverged");
            assert_eq!(
                t.with_shard_read(i, LsmTree::record_count),
                solo_tree.record_count(),
                "shard {i} contents diverged"
            );
        }
    }

    #[test]
    fn concurrent_writers_and_readers_across_shards() {
        let t = sharded(4);
        // Stable prefix every reader can verify throughout.
        for k in 0..2_000u64 {
            t.put(k, vec![(k % 251) as u8; 4]).unwrap();
        }
        let readers_ok = std::sync::atomic::AtomicBool::new(true);
        std::thread::scope(|s| {
            // 4 writers over disjoint key ranges (which hash across all
            // shards — disjointness is about keys, not shards).
            for w in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let base = 1_000_000 * (w + 1);
                    for i in 0..4_000u64 {
                        t.put(base + (i * 13 % 3_000), vec![(w % 251) as u8; 4]).unwrap();
                        if i % 4 == 0 {
                            t.delete(base + (i * 7 % 3_000)).unwrap();
                        }
                    }
                });
            }
            // 2 readers verifying the stable prefix.
            for r in 0..2u64 {
                let readers_ok = &readers_ok;
                let t = &t;
                s.spawn(move || {
                    for i in 0..4_000u64 {
                        let k = (i * (r + 3)) % 2_000;
                        match t.get(k) {
                            Ok(Some(v)) if v[..] == [(k % 251) as u8; 4][..] => {}
                            other => {
                                eprintln!("reader saw {other:?} for key {k}");
                                readers_ok.store(false, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            }
        });
        assert!(readers_ok.load(std::sync::atomic::Ordering::Relaxed));
        // Every concurrent lookup was counted (2 readers × 4000).
        assert_eq!(t.stats().lookups(), 8_000);
        // Every shard structurally sound, blocks re-read and re-checked.
        t.deep_verify(true).unwrap();
    }

    #[test]
    fn shard_events_reach_the_sink() {
        let counter = Arc::new(CountingSink::new());
        let t = ShardedLsmTree::with_mem_devices(
            small_cfg(),
            TreeOptions::builder()
                .policy(PolicySpec::ChooseBest)
                .sink(SinkHandle::new(counter.clone()))
                .build(),
            2,
            1 << 16,
        )
        .unwrap();
        for k in 0..2_000u64 {
            t.put(k, vec![1u8; 4]).unwrap();
        }
        let _ = t.get(7).unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.shard_routed, 2_001, "every routed request is announced");
        assert!(snap.merges > 0, "fill must trigger merges");
        assert_eq!(
            snap.shard_merges, snap.merges,
            "every MergeFinish is followed by a shard-tagged twin"
        );
    }

    #[test]
    fn wal_recovery_restores_every_shard() {
        let dir = std::env::temp_dir().join(format!("lsm-sharded-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let n = 3;
        {
            let t =
                ShardedLsmTree::with_wal_dir(small_cfg(), TreeOptions::default(), n, 1 << 16, &dir)
                    .unwrap();
            for k in 0..2_500u64 {
                t.put(k, vec![(k % 251) as u8; 4]).unwrap();
            }
            for k in (0..500u64).step_by(2) {
                t.delete(k).unwrap();
            }
            t.sync_wals().unwrap();
            // Crash: drop without any checkpointing.
        }
        let t =
            ShardedLsmTree::recover_with_wal(small_cfg(), TreeOptions::default(), n, 1 << 16, &dir)
                .unwrap();
        for k in 0..2_500u64 {
            let got = t.get(k).unwrap();
            if k < 500 && k % 2 == 0 {
                assert_eq!(got, None, "deleted key {k} resurrected");
            } else {
                assert_eq!(got.as_deref(), Some(&vec![(k % 251) as u8; 4][..]), "key {k}");
            }
        }
        t.deep_verify(true).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_ordered_interleaves_disjoint_runs() {
        let b = |k: Key| (k, Bytes::from(vec![k as u8]));
        let merged = merge_ordered(vec![
            vec![b(1), b(4), b(9)],
            vec![],
            vec![b(2), b(3), b(10)],
            vec![b(0)],
        ]);
        let keys: Vec<Key> = merged.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 9, 10]);
    }
}
