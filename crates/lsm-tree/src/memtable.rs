//! L0 — the memory-resident top level.
//!
//! New data enters the index by "logging" modifications in L0 (§II-A): an
//! insert adds a record; a delete or update for a key already in L0 is
//! executed in place, otherwise it is logged as a new record (tombstones
//! for deletes). L0 is an in-memory sorted index; for merge-policy purposes
//! it is viewed as a sequence of *virtual blocks* of `B` consecutive
//! records, so partial-merge window selection works uniformly across all
//! levels.

use std::collections::BTreeMap;

use crate::record::{Key, OpKind, Record, Request};

/// Metadata of one virtual block of L0 (or, generally, any run of records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// Smallest key in the chunk.
    pub min: Key,
    /// Largest key in the chunk.
    pub max: Key,
    /// Records in the chunk.
    pub count: u32,
}

/// The memory-resident top level.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    map: BTreeMap<Key, Record>,
}

impl Memtable {
    /// Empty L0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records (tombstones included — they occupy L0 capacity).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when L0 holds no records.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply one modification request (§II-A logging semantics).
    pub fn apply(&mut self, req: Request) {
        match req {
            Request::Put(k, payload) => {
                self.map.insert(k, Record { key: k, op: OpKind::Put, payload });
            }
            Request::Delete(k) => {
                self.map.insert(k, Record::delete(k));
            }
        }
    }

    /// Look up a key.
    pub fn get(&self, key: Key) -> Option<&Record> {
        self.map.get(&key)
    }

    /// Iterate records with keys in `[lo, hi]` (empty when `lo > hi`).
    pub fn range(&self, lo: Key, hi: Key) -> impl Iterator<Item = &Record> {
        // BTreeMap::range panics on inverted bounds; clamp to a valid
        // range and filter everything out instead.
        let valid = lo <= hi;
        let (lo, hi) = if valid { (lo, hi) } else { (0, 0) };
        self.map.range(lo..=hi).filter(move |_| valid).map(|(_, r)| r)
    }

    /// Iterate all records in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.map.values()
    }

    /// Chunk the current contents into virtual blocks of `b` records
    /// (the last chunk may be shorter). Policies select merge windows over
    /// these exactly as they select windows of physical blocks.
    pub fn virtual_blocks(&self, b: usize) -> Vec<RunMeta> {
        assert!(b > 0);
        let mut out = Vec::with_capacity(self.map.len().div_ceil(b));
        let mut iter = self.map.keys();
        let mut remaining = self.map.len();
        while remaining > 0 {
            let take = remaining.min(b);
            let first = *iter.next().expect("length accounted");
            let mut last = first;
            for _ in 1..take {
                last = *iter.next().expect("length accounted");
            }
            out.push(RunMeta { min: first, max: last, count: take as u32 });
            remaining -= take;
        }
        out
    }

    /// Remove and return every record, in key order.
    pub fn extract_all(&mut self) -> Vec<Record> {
        let map = std::mem::take(&mut self.map);
        map.into_values().collect()
    }

    /// Remove and return the records of virtual blocks
    /// `[start_block, start_block + num_blocks)` given chunk size `b`,
    /// in key order.
    pub fn extract_window(
        &mut self,
        start_block: usize,
        num_blocks: usize,
        b: usize,
    ) -> Vec<Record> {
        let start = start_block * b;
        let len = num_blocks * b;
        let keys: Vec<Key> = self.map.keys().skip(start).take(len).copied().collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            out.push(self.map.remove(&k).expect("key collected from map"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn put(k: Key) -> Request {
        Request::Put(k, Bytes::from_static(b"v"))
    }

    #[test]
    fn apply_upserts_and_tombstones() {
        let mut m = Memtable::new();
        m.apply(put(5));
        m.apply(put(5));
        assert_eq!(m.len(), 1);
        m.apply(Request::Delete(5));
        assert_eq!(m.len(), 1, "tombstone replaces, not removes");
        assert!(m.get(5).unwrap().is_tombstone());
        m.apply(put(5));
        assert!(!m.get(5).unwrap().is_tombstone());
    }

    #[test]
    fn inverted_range_is_empty() {
        let mut m = Memtable::new();
        m.apply(Request::Put(3, bytes::Bytes::new()));
        assert_eq!(m.range(5, 2).count(), 0);
    }

    #[test]
    fn range_and_iter_are_ordered() {
        let mut m = Memtable::new();
        for k in [9u64, 1, 5, 3, 7] {
            m.apply(put(k));
        }
        let keys: Vec<Key> = m.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        let mid: Vec<Key> = m.range(3, 7).map(|r| r.key).collect();
        assert_eq!(mid, vec![3, 5, 7]);
    }

    #[test]
    fn virtual_blocks_chunk_correctly() {
        let mut m = Memtable::new();
        for k in 0..7u64 {
            m.apply(put(k * 10));
        }
        let vb = m.virtual_blocks(3);
        assert_eq!(vb.len(), 3);
        assert_eq!(vb[0], RunMeta { min: 0, max: 20, count: 3 });
        assert_eq!(vb[1], RunMeta { min: 30, max: 50, count: 3 });
        assert_eq!(vb[2], RunMeta { min: 60, max: 60, count: 1 });
    }

    #[test]
    fn virtual_blocks_of_empty_table() {
        let m = Memtable::new();
        assert!(m.virtual_blocks(4).is_empty());
    }

    #[test]
    fn extract_all_empties_in_order() {
        let mut m = Memtable::new();
        for k in [4u64, 2, 8] {
            m.apply(put(k));
        }
        let recs = m.extract_all();
        assert_eq!(recs.iter().map(|r| r.key).collect::<Vec<_>>(), vec![2, 4, 8]);
        assert!(m.is_empty());
    }

    #[test]
    fn extract_window_takes_positional_chunk() {
        let mut m = Memtable::new();
        for k in 0..10u64 {
            m.apply(put(k));
        }
        // blocks of 3: [0,1,2][3,4,5][6,7,8][9]; take blocks 1..3
        let recs = m.extract_window(1, 2, 3);
        assert_eq!(recs.iter().map(|r| r.key).collect::<Vec<_>>(), vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(m.len(), 4);
        let left: Vec<Key> = m.iter().map(|r| r.key).collect();
        assert_eq!(left, vec![0, 1, 2, 9]);
    }

    #[test]
    fn extract_window_clamps_at_end() {
        let mut m = Memtable::new();
        for k in 0..5u64 {
            m.apply(put(k));
        }
        let recs = m.extract_window(1, 5, 2); // far past the end
        assert_eq!(recs.len(), 3);
        assert_eq!(m.len(), 2);
    }
}
