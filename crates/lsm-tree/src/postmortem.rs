//! Post-mortem bundles: one JSON file that says what the tree was doing
//! when something went wrong.
//!
//! A [`PostMortem`] collects the forensic state the other observability
//! pieces already maintain — the flight recorder's last-N events and open
//! span stack, [`TreeStats`] and level topology, the device's I/O counters
//! and per-block wear histogram/heatmap, and the decision ledger's
//! predicted-vs-actual table — and renders them as a single
//! `lsm-postmortem/v1` document via [`observe::Json`].
//!
//! Bundles are **deterministic**: nothing in them depends on wall-clock
//! time, process ids, or absolute paths, so two same-seed torture runs
//! produce byte-identical files (a property the test suite enforces).
//! Producers are the torture harness (automatic, on any failed cycle and
//! optionally on success), `lsm_crash` (which names the bundle next to the
//! failing seed), and anyone calling [`PostMortem::write_to`] by hand; the
//! consumer is the `lsm_postmortem` binary in `lsm-bench`.
//!
//! Sections are appended in call order, each under its own top-level key;
//! every bundle starts with `schema` and `reason`.

use std::io::Write as _;
use std::path::Path;

use observe::{FlightRecorderSink, Json};
use sim_ssd::{IoSnapshot, WearSnapshot};

use crate::policy::ledger::DecisionLedger;
use crate::stats::TreeStats;
use crate::tree::LsmTree;

/// Schema tag of the bundles this module writes.
pub const SCHEMA: &str = "lsm-postmortem/v1";

/// Builder for one post-mortem bundle (see module docs).
#[derive(Debug, Clone)]
pub struct PostMortem {
    sections: Vec<(String, Json)>,
}

impl PostMortem {
    /// Start a bundle; `reason` says why it exists ("torture failure",
    /// "explicit dump", …).
    pub fn new(reason: &str) -> Self {
        PostMortem {
            sections: vec![
                ("schema".into(), Json::from(SCHEMA)),
                ("reason".into(), Json::from(reason)),
            ],
        }
    }

    fn push(mut self, key: &str, value: Json) -> Self {
        self.sections.push((key.to_string(), value));
        self
    }

    /// The seed whose run produced this bundle.
    pub fn seed(self, seed: u64) -> Self {
        self.push("seed", Json::from(seed))
    }

    /// The exact command that replays the failure.
    pub fn repro(self, command: &str) -> Self {
        self.push("repro", Json::from(command))
    }

    /// The error message that triggered the dump.
    pub fn error(self, message: &str) -> Self {
        self.push("error", Json::from(message))
    }

    /// Attach an arbitrary extra section.
    pub fn section(self, key: &str, value: Json) -> Self {
        self.push(key, value)
    }

    /// The flight recorder's retained events, drop count, and open spans.
    pub fn flight(self, recorder: &FlightRecorderSink) -> Self {
        let json = recorder.to_json();
        self.push("flight", json)
    }

    /// The decision ledger's rows, totals, and cumulative regret.
    pub fn ledger(self, ledger: &DecisionLedger) -> Self {
        let json = ledger.to_json();
        self.push("ledger", json)
    }

    /// The windowed health engine's `lsm-health/v1` report (rolling
    /// stats, detector states, transitions, SLO burn).
    pub fn health(self, health: &observe::HealthSink) -> Self {
        self.push("health", health.report())
    }

    /// The tail-anatomy engine's `lsm-tail/v1` report (slowest-put
    /// exemplars, per-phase blame table, queue-delay histogram) — what
    /// the write path was actually waiting on when the bundle was cut.
    pub fn tail(self, exemplars: &observe::ExemplarSink) -> Self {
        self.push("tail", exemplars.report())
    }

    /// Device-level I/O counters.
    pub fn device_io(self, io: IoSnapshot) -> Self {
        self.push(
            "device_io",
            Json::obj([
                ("reads", Json::from(io.reads)),
                ("writes", Json::from(io.writes)),
                ("trims", Json::from(io.trims)),
                ("syncs", Json::from(io.syncs)),
            ]),
        )
    }

    /// Per-block wear from the simulated SSD, as a histogram plus a
    /// downsampled heatmap of `cells` cells.
    pub fn wear(self, snapshot: &WearSnapshot, cells: usize) -> Self {
        let json = snapshot.to_json(cells);
        self.push("wear", json)
    }

    /// Everything the live tree can report: policy, stats, level topology,
    /// degraded ranges, cache and device counters.
    pub fn tree(self, tree: &LsmTree) -> Self {
        let json = Self::tree_json(tree);
        self.push("tree", json)
    }

    /// The `tree` section alone — callers that lose the tree before the
    /// dump (the torture harness leaks it to simulate a host crash) can
    /// snapshot this early and attach it later via [`PostMortem::section`].
    pub fn tree_json(tree: &LsmTree) -> Json {
        let stats = tree.stats();
        let cache = tree.store().cache_stats();
        let io = tree.store().io_snapshot();
        let topology = Json::arr(tree.levels().iter().enumerate().map(|(i, level)| {
            Json::obj([
                ("paper_level", Json::from(i + 1)),
                ("blocks", Json::from(level.num_blocks())),
                ("records", Json::from(level.records())),
                ("min_key", level.min_key().map(Json::from).unwrap_or(Json::Null)),
                ("max_key", level.max_key().map(Json::from).unwrap_or(Json::Null)),
                ("waste_delta", Json::from(level.waste_delta)),
            ])
        }));
        let degraded = Json::arr(
            tree.degraded_ranges()
                .into_iter()
                .map(|(lo, hi)| Json::arr([Json::from(lo), Json::from(hi)])),
        );
        Json::obj([
            ("policy", Json::from(tree.policy_name())),
            ("height", Json::from(tree.height())),
            ("memtable_records", Json::from(tree.memtable().len())),
            ("record_count", Json::from(tree.record_count())),
            ("stats", Self::stats_json(stats)),
            ("levels", topology),
            ("degraded_ranges", degraded),
            (
                "cache",
                Json::obj([
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                ]),
            ),
            (
                "device_io",
                Json::obj([
                    ("reads", Json::from(io.reads)),
                    ("writes", Json::from(io.writes)),
                    ("trims", Json::from(io.trims)),
                    ("syncs", Json::from(io.syncs)),
                ]),
            ),
        ])
    }

    /// Render [`TreeStats`] (totals plus the per-level breakdown).
    pub fn stats_json(stats: &TreeStats) -> Json {
        let levels = Json::arr(stats.levels.iter().enumerate().map(|(i, l)| {
            Json::obj([
                ("paper_level", Json::from(i + 1)),
                ("merges_in", Json::from(l.merges_in)),
                ("blocks_written", Json::from(l.blocks_written)),
                ("blocks_read", Json::from(l.blocks_read)),
                ("blocks_preserved", Json::from(l.blocks_preserved)),
                ("records_in", Json::from(l.records_in)),
                ("compactions", Json::from(l.compactions)),
                ("compaction_writes", Json::from(l.compaction_writes)),
                ("pairwise_fixes", Json::from(l.pairwise_fixes)),
            ])
        }));
        Json::obj([
            ("puts", Json::from(stats.puts)),
            ("deletes", Json::from(stats.deletes)),
            ("lookups", Json::from(stats.lookups())),
            ("lookup_block_reads", Json::from(stats.lookup_block_reads())),
            ("bloom_skips", Json::from(stats.bloom_skips())),
            ("total_blocks_written", Json::from(stats.total_blocks_written())),
            ("total_blocks_read", Json::from(stats.total_blocks_read())),
            ("total_blocks_preserved", Json::from(stats.total_blocks_preserved())),
            ("levels", levels),
        ])
    }

    /// Render the bundle as one JSON object, sections in insertion order.
    pub fn to_json(&self) -> Json {
        Json::obj(self.sections.iter().map(|(k, v)| (k.clone(), v.clone())))
    }

    /// Write the bundle (pretty-printed, trailing newline) to `path`,
    /// creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().render_pretty().as_bytes())?;
        f.sync_all()
    }
}

/// Check that a parsed document looks like a v1 post-mortem bundle:
/// correct schema tag, a reason, and at least one forensic section.
/// Returns the list of problems (empty means valid).
pub fn validate_bundle(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let Json::Obj(pairs) = doc else {
        return vec!["bundle is not a JSON object".to_string()];
    };
    let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(other) => problems.push(format!("schema is {other:?}, expected \"{SCHEMA}\"")),
        None => problems.push("missing schema".to_string()),
    }
    if !matches!(get("reason"), Some(Json::Str(_))) {
        problems.push("missing reason".to_string());
    }
    let forensic = ["flight", "ledger", "tree", "wear", "device_io", "health", "tail"];
    if !forensic.iter().any(|k| get(k).is_some()) {
        problems.push(format!("no forensic section (expected one of {forensic:?})"));
    }
    if let Some(Json::Obj(flight)) = get("flight") {
        for key in ["capacity", "total", "dropped", "open_spans", "events"] {
            if !flight.iter().any(|(k, _)| k == key) {
                problems.push(format!("flight section missing {key}"));
            }
        }
    }
    // An embedded health section must itself be a valid lsm-health/v1
    // report (absent is fine — not every producer runs the engine).
    match get("health") {
        Some(health @ Json::Obj(_)) => {
            for problem in observe::health::validate_health(health) {
                problems.push(format!("health section: {problem}"));
            }
        }
        Some(_) => problems.push("health section is not an object".to_string()),
        None => {}
    }
    // Likewise for an embedded tail-anatomy report.
    match get("tail") {
        Some(tail @ Json::Obj(_)) => {
            for problem in observe::exemplar::validate_tail(tail) {
                problems.push(format!("tail section: {problem}"));
            }
        }
        Some(_) => problems.push("tail section is not an object".to_string()),
        None => {}
    }
    match get("scheduler") {
        Some(Json::Obj(sched)) => {
            let field = |key: &str| sched.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            if field("rendezvous").is_none() {
                problems.push("scheduler section missing rendezvous".to_string());
            }
            // Inline (no background backend) dumps carry only the backend
            // tag; a real backend snapshot must expose its queue state.
            let inline = matches!(field("backend"), Some(Json::Str(s)) if s == "inline");
            if !inline {
                for key in ["queued", "running", "backlogs", "max_imm_memtables", "shutdown"] {
                    if field(key).is_none() {
                        problems.push(format!("scheduler section missing {key}"));
                    }
                }
            }
        }
        Some(_) => problems.push("scheduler section is not an object".to_string()),
        None => {}
    }
    problems
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::config::LsmConfig;
    use crate::policy::PolicySpec;
    use crate::tree::TreeOptions;
    use observe::{Event, EventSink};

    fn small_tree() -> LsmTree {
        let cfg = LsmConfig {
            block_size: 256,
            payload_size: 4,
            k0_blocks: 4,
            gamma: 4,
            cache_blocks: 64,
            merge_rate: 0.25,
            ..LsmConfig::default()
        };
        let ledger = Arc::new(DecisionLedger::new(64));
        let mut t = LsmTree::with_mem_device(
            cfg,
            TreeOptions::builder().policy(PolicySpec::ChooseBest).ledger(ledger).build(),
            1 << 16,
        )
        .unwrap();
        for k in 0..600u64 {
            t.put(k * 7, vec![(k % 251) as u8; 4]).unwrap();
        }
        t
    }

    #[test]
    fn bundle_renders_and_validates() {
        let tree = small_tree();
        let recorder = FlightRecorderSink::new(8);
        recorder.emit(&Event::CacheHit);
        let pm = PostMortem::new("unit test")
            .seed(7)
            .repro("cargo test -p lsm-tree postmortem")
            .error("synthetic")
            .flight(&recorder)
            .ledger(tree.ledger().expect("ledger attached"))
            .tree(&tree);
        let doc = Json::parse(&pm.to_json().render()).expect("bundle parses");
        assert!(validate_bundle(&doc).is_empty(), "{:?}", validate_bundle(&doc));
        let Json::Obj(pairs) = doc else { panic!() };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec!["schema", "reason", "seed", "repro", "error", "flight", "ledger", "tree"],
            "sections in insertion order"
        );
    }

    #[test]
    fn health_section_is_validated_when_present() {
        let health = observe::HealthSink::with_defaults();
        health.record_put(Some(0), 1_000);
        health.emit(&Event::DeviceSync);
        let recorder = FlightRecorderSink::new(8);
        let pm = PostMortem::new("health test").flight(&recorder).health(&health);
        let doc = Json::parse(&pm.to_json().render()).expect("bundle parses");
        assert!(validate_bundle(&doc).is_empty(), "{:?}", validate_bundle(&doc));

        // A malformed embedded report is reported with its section prefix.
        let tampered = pm.to_json().render().replace("lsm-health/v1", "lsm-health/v0");
        let doc = Json::parse(&tampered).unwrap();
        assert!(validate_bundle(&doc).iter().any(|p| p.starts_with("health section:")));
    }

    #[test]
    fn tail_section_is_validated_when_present() {
        let exemplars = observe::ExemplarSink::new(observe::ExemplarConfig::default());
        if let Some(id) = exemplars.span_begin(&observe::SpanOp::put()) {
            exemplars.span_end(id, &observe::SpanOp::put());
        }
        let recorder = FlightRecorderSink::new(8);
        let pm = PostMortem::new("tail test").flight(&recorder).tail(&exemplars);
        let doc = Json::parse(&pm.to_json().render()).expect("bundle parses");
        assert!(validate_bundle(&doc).is_empty(), "{:?}", validate_bundle(&doc));

        let tampered = pm.to_json().render().replace("lsm-tail/v1", "lsm-tail/v0");
        let doc = Json::parse(&tampered).unwrap();
        assert!(validate_bundle(&doc).iter().any(|p| p.starts_with("tail section:")));
    }

    #[test]
    fn validate_rejects_wrong_or_missing_schema() {
        let bad = Json::obj([("reason", Json::from("x"))]);
        assert!(validate_bundle(&bad).iter().any(|p| p.contains("missing schema")));
        let wrong = Json::obj([
            ("schema", Json::from("something/v9")),
            ("reason", Json::from("x")),
            ("flight", Json::obj([] as [(&str, Json); 0])),
        ]);
        assert!(validate_bundle(&wrong).iter().any(|p| p.contains("expected")));
        assert!(!validate_bundle(&Json::from(3u64)).is_empty());
    }

    #[test]
    fn write_to_creates_parent_dirs_and_round_trips() {
        let dir = std::env::temp_dir()
            .join(format!("lsm-postmortem-test-{}", std::process::id()))
            .join("nested");
        let path = dir.join("bundle.json");
        let tree = small_tree();
        let pm = PostMortem::new("roundtrip").tree(&tree).device_io(tree.store().io_snapshot());
        pm.write_to(&path).expect("write bundle");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc = Json::parse(&text).expect("parses");
        assert!(validate_bundle(&doc).is_empty());
        assert!(text.ends_with('\n'), "pretty rendering ends with a newline");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn tree_section_reflects_topology() {
        let tree = small_tree();
        let Json::Obj(pairs) = PostMortem::tree_json(&tree) else { panic!() };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        assert_eq!(get("policy"), Some(Json::from("ChooseBest")));
        let Some(Json::Arr(levels)) = get("levels") else { panic!("missing levels") };
        assert_eq!(levels.len(), tree.levels().len());
        assert_eq!(get("height"), Some(Json::from(tree.height())));
    }
}
