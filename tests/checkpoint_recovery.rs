//! End-to-end checkpoint/restore across a process-lifetime boundary: the
//! index is built on a file-backed device, checkpointed, dropped, and
//! reopened from the manifest — contents, invariants, and further
//! operation must all survive.

use std::path::PathBuf;
use std::sync::Arc;

use lsm_ssd_repro::lsm_tree::verify::check_tree;
use lsm_ssd_repro::lsm_tree::{LsmConfig, LsmTree, PolicySpec, TreeOptions};
use lsm_ssd_repro::sim_ssd::FileDevice;
use lsm_ssd_repro::workloads::payload_for;

fn cfg() -> LsmConfig {
    LsmConfig {
        block_size: 512,
        payload_size: 20,
        k0_blocks: 8,
        gamma: 8,
        cache_blocks: 64,
        merge_rate: 0.1,
        ..LsmConfig::default()
    }
}

fn paths(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir();
    (
        base.join(format!("lsm-ckpt-{}-{tag}.dev", std::process::id())),
        base.join(format!("lsm-ckpt-{}-{tag}.manifest", std::process::id())),
    )
}

#[test]
fn checkpoint_then_restore_preserves_everything() {
    let (dev_path, man_path) = paths("basic");
    let expected: Vec<(u64, bool)> = (0..4_000u64).map(|k| (k * 17 % 65_537, k % 3 != 0)).collect();
    {
        let dev = Arc::new(FileDevice::create_with_block_size(&dev_path, 1 << 14, 512).unwrap());
        let mut tree = LsmTree::new(cfg(), TreeOptions::default(), dev).unwrap();
        for &(key, _) in &expected {
            tree.put(key, payload_for(key, 20)).unwrap();
        }
        for &(key, keep) in &expected {
            if !keep {
                tree.delete(key).unwrap();
            }
        }
        tree.checkpoint(&man_path).unwrap();
    } // tree and device dropped: "process exit"

    let dev = Arc::new(FileDevice::open(&dev_path, 512).unwrap());
    let mut tree = LsmTree::restore(&man_path, TreeOptions::default(), dev).unwrap();
    check_tree(&tree, true).expect("restored tree invariants");

    for &(key, keep) in &expected {
        let got = tree.get(key).unwrap();
        if keep {
            assert_eq!(got.as_deref(), Some(&payload_for(key, 20)[..]), "key {key} lost");
        } else {
            assert_eq!(got, None, "deleted key {key} resurrected");
        }
    }

    // The restored index keeps working: more writes, merges, lookups.
    for k in 0..2_000u64 {
        tree.put(1_000_000 + k, payload_for(k, 20)).unwrap();
    }
    assert!(tree.get(1_000_999).unwrap().is_some());
    check_tree(&tree, true).unwrap();

    std::fs::remove_file(&dev_path).ok();
    std::fs::remove_file(&man_path).ok();
}

#[test]
fn restore_preserves_policy_cursors_and_bookkeeping() {
    let (dev_path, man_path) = paths("cursors");
    let before;
    {
        let dev = Arc::new(FileDevice::create_with_block_size(&dev_path, 1 << 14, 512).unwrap());
        let mut tree =
            LsmTree::new(cfg(), TreeOptions::builder().policy(PolicySpec::RoundRobin).build(), dev)
                .unwrap();
        for k in 0..5_000u64 {
            tree.put(k * 11 % 99_991, payload_for(k, 20)).unwrap();
        }
        before = (
            tree.mem_rr_cursor(),
            tree.levels().iter().map(|l| (l.rr_cursor, l.waste_delta)).collect::<Vec<_>>(),
            tree.record_count(),
        );
        tree.checkpoint(&man_path).unwrap();
    }
    let dev = Arc::new(FileDevice::open(&dev_path, 512).unwrap());
    let tree = LsmTree::restore(
        &man_path,
        TreeOptions::builder().policy(PolicySpec::RoundRobin).build(),
        dev,
    )
    .unwrap();
    let after = (
        tree.mem_rr_cursor(),
        tree.levels().iter().map(|l| (l.rr_cursor, l.waste_delta)).collect::<Vec<_>>(),
        tree.record_count(),
    );
    assert_eq!(before, after, "cursors/bookkeeping must survive restart");
    std::fs::remove_file(&dev_path).ok();
    std::fs::remove_file(&man_path).ok();
}

#[test]
fn restore_rejects_mismatched_device() {
    let (dev_path, man_path) = paths("mismatch");
    {
        let dev = Arc::new(FileDevice::create_with_block_size(&dev_path, 1 << 12, 512).unwrap());
        let mut tree = LsmTree::new(cfg(), TreeOptions::default(), dev).unwrap();
        tree.put(1, payload_for(1, 20)).unwrap();
        tree.checkpoint(&man_path).unwrap();
    }
    // Reopen with the wrong block size: must be refused.
    let wrong = Arc::new(FileDevice::open(&dev_path, 1024).unwrap());
    assert!(LsmTree::restore(&man_path, TreeOptions::default(), wrong).is_err());
    std::fs::remove_file(&dev_path).ok();
    std::fs::remove_file(&man_path).ok();
}

#[test]
fn restored_allocator_does_not_clobber_live_blocks() {
    let (dev_path, man_path) = paths("alloc");
    {
        let dev = Arc::new(FileDevice::create_with_block_size(&dev_path, 1 << 14, 512).unwrap());
        let mut tree = LsmTree::new(cfg(), TreeOptions::default(), dev).unwrap();
        for k in 0..3_000u64 {
            tree.put(k, payload_for(k, 20)).unwrap();
        }
        tree.checkpoint(&man_path).unwrap();
    }
    let dev = Arc::new(FileDevice::open(&dev_path, 512).unwrap());
    let mut tree = LsmTree::restore(&man_path, TreeOptions::default(), dev).unwrap();
    // Hammer the restored index with enough churn to recycle many blocks;
    // if the allocator handed out a live id, some old key would corrupt.
    for k in 3_000..9_000u64 {
        tree.put(k, payload_for(k, 20)).unwrap();
    }
    for k in (0..9_000u64).step_by(2) {
        tree.delete(k).unwrap();
    }
    for k in (1..9_000u64).step_by(501).filter(|k| k % 2 == 1) {
        assert_eq!(tree.get(k).unwrap().as_deref(), Some(&payload_for(k, 20)[..]), "key {k}");
    }
    for k in (0..9_000u64).step_by(502) {
        assert_eq!(tree.get(k).unwrap(), None, "deleted key {k} resurrected");
    }
    check_tree(&tree, true).unwrap();
    std::fs::remove_file(&dev_path).ok();
    std::fs::remove_file(&man_path).ok();
}
