//! Shape checks of the paper's claims, end to end on small geometries:
//! these run in `cargo test` (debug) so they use reduced sizes, but they
//! exercise the same code paths as the figure binaries.

use std::sync::Arc;

use lsm_ssd_repro::lsm_tree::observe::{Event, SinkHandle, VecSink};
use lsm_ssd_repro::lsm_tree::{LsmConfig, LsmTree, PolicySpec, TreeOptions};
use lsm_ssd_repro::workloads::{
    fill_to_bytes, reach_steady_state, run_requests, volume_requests, CostMeter, InsertRatio,
    Normal, Uniform, Workload,
};

const DOMAIN: u64 = 1_000_000_000;

fn cfg() -> LsmConfig {
    // The paper's geometry ratios at 1/1000 scale: Γ = 10, δ = 0.05,
    // B = 29 (512-byte blocks, 4-byte payloads, 17-byte records).
    LsmConfig {
        block_size: 512,
        payload_size: 4,
        k0_blocks: 12,
        gamma: 10,
        cache_blocks: 256,
        merge_rate: 0.05,
        ..LsmConfig::default()
    }
}

fn steady(policy: PolicySpec, preserve: bool, wl: &mut dyn Workload, dataset: u64) -> LsmTree {
    let mut tree = LsmTree::with_mem_device(
        cfg(),
        TreeOptions::builder().policy(policy).preserve_blocks(preserve).build(),
        1 << 17,
    )
    .unwrap();
    fill_to_bytes(&mut tree, wl, dataset).unwrap();
    reach_steady_state(&mut tree, wl, 5_000_000).unwrap();
    tree
}

fn measure(tree: &mut LsmTree, wl: &mut dyn Workload, mb: f64) -> f64 {
    let n = volume_requests(mb, tree.config().record_size());
    let meter = CostMeter::start(tree);
    run_requests(tree, wl, n).unwrap();
    meter.read(tree).writes_per_mb
}

/// §III-E / Figure 2: at this crate's test scale (1/1000 of the paper's),
/// window granularity is too coarse for ChooseBest's full advantage, so
/// the debug-mode check asserts the robust form of the claim: ChooseBest
/// never does worse than Full, and TestMixed clearly beats Full. The
/// strict `ChooseBest < Full` separation at the paper's scale is checked
/// by `choose_best_strictly_beats_full_paper_scale` (run with
/// `cargo test --release -- --ignored`) and by the Figure-2 binary.
#[test]
fn choose_best_no_worse_than_full_on_uniform() {
    let dataset = 150 * 1024; // bottom L2 at ~25% of capacity
    let mut wl = Uniform::new(3, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    let mut full = steady(PolicySpec::Full, true, &mut wl, dataset);
    let c_full = measure(&mut full, &mut wl, 6.0);

    let mut wl = Uniform::new(3, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    let mut cb = steady(PolicySpec::ChooseBest, true, &mut wl, dataset);
    let c_cb = measure(&mut cb, &mut wl, 6.0);

    assert!(
        c_cb < c_full * 1.05,
        "ChooseBest ({c_cb:.0}/MB) must not lose to Full ({c_full:.0}/MB) on Uniform"
    );

    let mut wl = Uniform::new(3, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    let mut tm = steady(PolicySpec::TestMixed, true, &mut wl, dataset);
    let c_tm = measure(&mut tm, &mut wl, 6.0);
    assert!(
        c_tm < c_full * 0.9,
        "TestMixed ({c_tm:.0}/MB) must clearly beat Full ({c_full:.0}/MB)"
    );
}

/// The strict Figure-2 separation at (close to) the paper's small-setup
/// scale. Expensive: run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run; use cargo test --release -- --ignored"]
fn choose_best_strictly_beats_full_paper_scale() {
    let cfg = LsmConfig {
        k0_blocks: 250,
        cache_blocks: 256,
        merge_rate: 1.0 / 20.0,
        ..LsmConfig::default()
    };
    let dataset = 20 * 1024 * 1024;
    let measure_req = volume_requests(100.0, cfg.record_size());
    let mut costs = Vec::new();
    for policy in [PolicySpec::Full, PolicySpec::ChooseBest] {
        let mut wl = Uniform::new(3, DOMAIN, 100, InsertRatio::INSERT_ONLY);
        let mut tree = LsmTree::with_mem_device(
            cfg.clone(),
            TreeOptions::builder().policy(policy).build(),
            1 << 17,
        )
        .unwrap();
        fill_to_bytes(&mut tree, &mut wl, dataset).unwrap();
        reach_steady_state(&mut tree, &mut wl, 50_000_000).unwrap();
        let meter = CostMeter::start(&tree);
        run_requests(&mut tree, &mut wl, measure_req).unwrap();
        costs.push(meter.read(&tree).writes_per_mb);
    }
    assert!(
        costs[1] < costs[0] * 0.95,
        "ChooseBest ({:.0}/MB) must strictly beat Full ({:.0}/MB) at paper scale",
        costs[1],
        costs[0]
    );
}

/// Figure 2 / §IV-A: with a relatively empty bottom level, TestMixed
/// (full merges into the bottom) beats plain ChooseBest.
#[test]
fn test_mixed_beats_choose_best_when_bottom_is_small() {
    let dataset = 120 * 1024;
    let mut wl = Uniform::new(5, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    let mut cb = steady(PolicySpec::ChooseBest, true, &mut wl, dataset);
    let c_cb = measure(&mut cb, &mut wl, 6.0);

    let mut wl = Uniform::new(5, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    let mut tm = steady(PolicySpec::TestMixed, true, &mut wl, dataset);
    let c_tm = measure(&mut tm, &mut wl, 6.0);

    assert!(
        c_tm < c_cb,
        "TestMixed ({c_tm:.0}/MB) must beat ChooseBest ({c_cb:.0}/MB) at a small bottom level"
    );
}

/// §V-B / Figure 8: under a skewed workload ChooseBest clearly beats RR
/// (RR only matches ChooseBest when the least-recently-merged region
/// happens to be dense, which skew breaks).
#[test]
fn choose_best_beats_rr_under_skew() {
    let dataset = 150 * 1024;
    let sigma = 0.001;
    let mut wl = Normal::new(7, DOMAIN, 4, InsertRatio::INSERT_ONLY, sigma, 2_000);
    let mut rr = steady(PolicySpec::RoundRobin, true, &mut wl, dataset);
    let c_rr = measure(&mut rr, &mut wl, 6.0);

    let mut wl = Normal::new(7, DOMAIN, 4, InsertRatio::INSERT_ONLY, sigma, 2_000);
    let mut cb = steady(PolicySpec::ChooseBest, true, &mut wl, dataset);
    let c_cb = measure(&mut cb, &mut wl, 6.0);

    assert!(c_cb < c_rr, "ChooseBest ({c_cb:.0}/MB) must beat RR ({c_rr:.0}/MB) under skew");
}

/// Theorem 2: under ChooseBest, *every* merge into `L_i` writes at most
/// `δ(1/Γ + 1)·K_i` blocks (+ a constant for seam fix-ups). This is the
/// paper's headline worst-case guarantee — unlike Full and RR, no merge
/// ever rewrites the whole next level.
#[test]
fn choose_best_per_merge_bound_theorem2() {
    let c = cfg();
    let probe = Arc::new(VecSink::new());
    let mut tree = LsmTree::with_mem_device(
        c.clone(),
        TreeOptions::builder()
            .policy(PolicySpec::ChooseBest)
            .preserve_blocks(false) // preservation only lowers cost
            .sink(SinkHandle::new(Arc::clone(&probe) as _))
            .build(),
        1 << 17,
    )
    .unwrap();
    let mut wl = Uniform::new(11, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    fill_to_bytes(&mut tree, &mut wl, 250 * 1024).unwrap();
    wl.set_ratio(InsertRatio::HALF);
    run_requests(&mut tree, &mut wl, 60_000).unwrap();

    let mut checked = 0;
    for ev in probe.drain() {
        if let Event::MergeFinish { target_level, full: false, writes, .. } = ev {
            let k_src = c.level_capacity_blocks(target_level - 1) as f64;
            let k_i = c.level_capacity_blocks(target_level) as f64;
            // Effective merge rate: δK of the source clamps to one block
            // at this scale (the theorem's δ is the realized fraction).
            let delta_eff =
                (c.merge_window_blocks(target_level - 1) as f64 / k_src).max(c.merge_rate);
            // δ(1/Γ + 1)·K_i = δ·(K_{i-1} + K_i); +1 window-rounding block,
            // +1 partial tail block, +2 seam fix-ups.
            let bound = delta_eff * (k_src + k_i) + 4.0;
            assert!(
                (writes as f64) <= bound,
                "merge into L{target_level} wrote {writes} blocks > Theorem-2 bound {bound:.1}"
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "expected many partial merges, saw {checked}");
}

/// §II-B: block preservation can only reduce writes, and with one-record
/// blocks every block is preservable, collapsing the gap between policies.
#[test]
fn preservation_reduces_writes_and_dominates_at_huge_payloads() {
    // Payload sized so B = 1 (one record fills more than half a block).
    let big = LsmConfig { payload_size: 400, block_size: 512, ..cfg() };
    // record = 413 B → one per 512-byte block
    assert_eq!(big.block_capacity(), 1);
    let mut on = LsmTree::with_mem_device(
        big.clone(),
        TreeOptions::builder().policy(PolicySpec::ChooseBest).preserve_blocks(true).build(),
        1 << 17,
    )
    .unwrap();
    let mut off = LsmTree::with_mem_device(
        big,
        TreeOptions::builder().policy(PolicySpec::ChooseBest).preserve_blocks(false).build(),
        1 << 17,
    )
    .unwrap();
    let mut wl = Uniform::new(13, DOMAIN, 400, InsertRatio::INSERT_ONLY);
    fill_to_bytes(&mut on, &mut wl, 400 * 1024).unwrap();
    let mut wl = Uniform::new(13, DOMAIN, 400, InsertRatio::INSERT_ONLY);
    fill_to_bytes(&mut off, &mut wl, 400 * 1024).unwrap();

    let w_on = on.stats().total_blocks_written();
    let w_off = off.stats().total_blocks_written();
    assert!(
        w_on < w_off / 2,
        "with B = 1, preservation should at least halve writes: {w_on} vs {w_off}"
    );
    assert!(on.stats().total_blocks_preserved() > 0);
}

/// Full policy really is periodic: merges into the bottom have (nearly)
/// equal cost in steady state (Figure 3's equal-height steps).
#[test]
fn full_policy_bottom_merges_are_equal_steps() {
    let probe = Arc::new(VecSink::new());
    let mut tree = LsmTree::with_mem_device(
        cfg(),
        TreeOptions::builder()
            .policy(PolicySpec::Full)
            .preserve_blocks(false)
            .sink(SinkHandle::new(Arc::clone(&probe) as _))
            .build(),
        1 << 17,
    )
    .unwrap();
    let mut wl = Uniform::new(17, DOMAIN, 4, InsertRatio::INSERT_ONLY);
    fill_to_bytes(&mut tree, &mut wl, 150 * 1024).unwrap();
    reach_steady_state(&mut tree, &mut wl, 5_000_000).unwrap();
    probe.drain();
    let bottom = tree.height() - 1;
    run_requests(&mut tree, &mut wl, 400_000).unwrap();

    let steps: Vec<u64> = probe
        .drain()
        .into_iter()
        .filter_map(|e| match e {
            Event::MergeFinish { target_level, writes, .. } if target_level == bottom => {
                Some(writes)
            }
            _ => None,
        })
        .collect();
    assert!(steps.len() >= 2, "need at least two bottom merges, saw {}", steps.len());
    let min = *steps.iter().min().unwrap() as f64;
    let max = *steps.iter().max().unwrap() as f64;
    assert!(
        max / min.max(1.0) < 1.5,
        "steady-state bottom merges should cost roughly the same: {steps:?}"
    );
}
