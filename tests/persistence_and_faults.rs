//! Cross-crate tests of the storage substrate under the full index:
//! file-backed devices, wear accounting, cache pressure, and injected
//! write failures.

use std::path::PathBuf;
use std::sync::Arc;

use lsm_ssd_repro::lsm_tree::{LsmConfig, LsmError, LsmTree, PolicySpec, TreeOptions};
use lsm_ssd_repro::sim_ssd::{BlockDevice, FaultDevice, FaultPlan, FileDevice, MemDevice};
use lsm_ssd_repro::workloads::payload_for;

fn cfg() -> LsmConfig {
    LsmConfig {
        block_size: 512,
        payload_size: 20,
        k0_blocks: 8,
        gamma: 8,
        cache_blocks: 64,
        merge_rate: 0.1,
        ..LsmConfig::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lsm-it-{}-{tag}.dev", std::process::id()))
}

#[test]
fn file_device_runs_the_full_index() {
    let path = temp_path("full-index");
    {
        let dev =
            Arc::new(FileDevice::create_with_block_size(&path, 1 << 14, cfg().block_size).unwrap());
        let mut tree = LsmTree::new(cfg(), TreeOptions::default(), dev).unwrap();
        for k in 0..5_000u64 {
            tree.put(k * 11, payload_for(k * 11, 20)).unwrap();
        }
        for k in (0..5_000u64).step_by(2) {
            tree.delete(k * 11).unwrap();
        }
        // All lookups verify payload integrity against the generator.
        for k in 0..5_000u64 {
            let got = tree.get(k * 11).unwrap();
            if k % 2 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got.as_deref(), Some(&payload_for(k * 11, 20)[..]), "key {k}");
            }
        }
        lsm_ssd_repro::lsm_tree::verify::check_tree(&tree, true).unwrap();
        tree.store().device().sync().unwrap();
        let io = tree.store().io_snapshot();
        assert!(io.writes > 0 && io.syncs >= 1);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn wear_concentrates_under_more_writes() {
    // Same workload with Full vs ChooseBest: the policy that writes more
    // blocks programs more flash — the paper's §I motivation made visible
    // through the device's wear counters.
    let mut totals = Vec::new();
    for policy in [PolicySpec::Full, PolicySpec::ChooseBest] {
        let dev = Arc::new(MemDevice::with_block_size(1 << 14, 512));
        let mut tree = LsmTree::new(
            cfg(),
            TreeOptions::builder().policy(policy).preserve_blocks(true).build(),
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
        )
        .unwrap();
        for k in 0..12_000u64 {
            tree.put((k * 2_654_435_761) % 1_000_000, payload_for(k, 20)).unwrap();
        }
        let wear = dev.wear_summary();
        assert_eq!(wear.total_programs, dev.io_snapshot().writes);
        totals.push(wear.total_programs);
    }
    assert!(totals[1] < totals[0], "ChooseBest should program less flash: {totals:?}");
}

#[test]
fn tiny_cache_still_correct_just_slower() {
    let big_cache = run_with_cache(256);
    let tiny_cache = run_with_cache(1);
    assert_eq!(big_cache.0, tiny_cache.0, "results must not depend on cache size");
    assert!(
        tiny_cache.1 > big_cache.1,
        "a 1-block cache must cause more device reads ({} vs {})",
        tiny_cache.1,
        big_cache.1
    );
}

fn run_with_cache(cache_blocks: usize) -> (Vec<u64>, u64) {
    let mut c = cfg();
    c.cache_blocks = cache_blocks;
    let mut tree = LsmTree::with_mem_device(c, TreeOptions::default(), 1 << 14).unwrap();
    for k in 0..6_000u64 {
        tree.put(k * 7 % 100_000, payload_for(k, 20)).unwrap();
    }
    // A hot working set probed repeatedly: a big cache serves repeats from
    // memory, a 1-block cache goes back to the device every time.
    let before = tree.store().io_snapshot().reads;
    let mut live: Vec<u64> = Vec::new();
    for round in 0..50 {
        for k in (0..6_000u64).step_by(399) {
            if tree.get(k * 7 % 100_000).unwrap().is_some() && round == 0 {
                live.push(k);
            }
        }
    }
    (live, tree.store().io_snapshot().reads - before)
}

#[test]
fn injected_write_failure_surfaces_as_error() {
    let dev = Arc::new(FaultDevice::new(Arc::new(MemDevice::with_block_size(1 << 14, 512)), 11));
    let mut tree =
        LsmTree::new(cfg(), TreeOptions::default(), Arc::clone(&dev) as Arc<dyn BlockDevice>)
            .unwrap();
    // Fill L0 to one record below overflow so the next put merges.
    let cap = tree.config().l0_capacity_records();
    for k in 0..(cap as u64 - 1) {
        tree.put(k, payload_for(k, 20)).unwrap();
    }
    // Every write fails, so the retry budget is exhausted and the error
    // surfaces (a single scheduled fault would be absorbed by the retries).
    dev.set_plan(FaultPlan::none().write_error_rate(1.0));
    let err = tree.put(u64::MAX / 2, payload_for(1, 20)).unwrap_err();
    assert!(matches!(err, LsmError::Device(_)), "unexpected error: {err}");
    // After the fault clears, the index accepts writes again.
    dev.set_plan(FaultPlan::none());
    for k in 0..200u64 {
        tree.put(1_000_000 + k, payload_for(k, 20)).unwrap();
    }
    assert!(tree.get(1_000_100).unwrap().is_some());
}

#[test]
fn device_exhaustion_is_reported_not_panicked() {
    // A device far too small for the data: the cascade must eventually
    // fail with NoSpace wrapped in LsmError::Device.
    let mut tree = LsmTree::with_mem_device(cfg(), TreeOptions::default(), 24).unwrap();
    let mut result = Ok(());
    for k in 0..100_000u64 {
        result = tree.put(k, payload_for(k, 20));
        if result.is_err() {
            break;
        }
    }
    assert!(matches!(result, Err(LsmError::Device(_))), "expected NoSpace, got {result:?}");
}
