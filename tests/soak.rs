//! Long-running soak test (ignored by default; run with
//! `cargo test --release --test soak -- --ignored`): a million mixed
//! operations against the model, across policies, with periodic deep
//! invariant checks, policy swaps, and a checkpoint/restore in the middle.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm_ssd_repro::lsm_tree::verify::check_tree;
use lsm_ssd_repro::lsm_tree::{LsmConfig, LsmTree, PolicySpec, Request, TreeOptions};
use lsm_ssd_repro::sim_ssd::FileDevice;

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 11
}

#[test]
#[ignore = "million-op soak; run with cargo test --release -- --ignored"]
fn million_op_soak_with_restart() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let dev_path = dir.join(format!("lsm-soak-{pid}.dev"));
    let man_path = dir.join(format!("lsm-soak-{pid}.manifest"));
    let cfg = LsmConfig {
        block_size: 512,
        payload_size: 8,
        k0_blocks: 16,
        gamma: 8,
        cache_blocks: 256,
        merge_rate: 0.07,
        ..LsmConfig::default()
    };
    let key_space = 200_000u64;
    let mut model: BTreeMap<u64, u8> = BTreeMap::new();
    let mut state = 0xDEADBEEFu64;

    let policies = [
        PolicySpec::ChooseBest,
        PolicySpec::RoundRobin,
        PolicySpec::TestMixed,
        PolicySpec::Full,
        PolicySpec::ChooseBestAligned,
    ];

    let dev = Arc::new(FileDevice::create_with_block_size(&dev_path, 1 << 17, 512).unwrap());
    let mut tree = LsmTree::new(cfg.clone(), TreeOptions::default(), dev).unwrap();

    for phase in 0..10u64 {
        // Rotate the policy every phase: data must survive policy churn.
        tree.set_policy(policies[(phase as usize) % policies.len()].build());
        for _ in 0..100_000u64 {
            let r = lcg(&mut state);
            let k = lcg(&mut state) % key_space;
            if r % 5 < 3 {
                let v = (r % 251) as u8;
                tree.apply(Request::Put(k, bytes::Bytes::from(vec![v; 8]))).unwrap();
                model.insert(k, v);
            } else {
                tree.apply(Request::Delete(k)).unwrap();
                model.remove(&k);
            }
        }
        check_tree(&tree, false).unwrap_or_else(|e| panic!("phase {phase}: {e}"));
        // Spot-check a pseudo-random sample against the model.
        for _ in 0..2_000 {
            let k = lcg(&mut state) % key_space;
            let got = tree.get(k).unwrap();
            let want = model.get(&k).map(|&v| vec![v; 8]);
            assert_eq!(got.as_deref(), want.as_deref(), "phase {phase}, key {k}");
        }
        // Mid-soak restart through the manifest.
        if phase == 4 {
            tree.checkpoint(&man_path).unwrap();
            drop(tree);
            let dev = Arc::new(FileDevice::open(&dev_path, 512).unwrap());
            tree = LsmTree::restore(&man_path, TreeOptions::default(), dev).unwrap();
            check_tree(&tree, true).unwrap();
        }
    }

    // Final exhaustive comparison.
    check_tree(&tree, true).unwrap();
    let scanned: Vec<u64> = tree.scan(0, u64::MAX).map(|r| r.unwrap().0).collect();
    let want: Vec<u64> = model.keys().copied().collect();
    assert_eq!(scanned, want);

    std::fs::remove_file(&dev_path).ok();
    std::fs::remove_file(&man_path).ok();
}
