//! Integration of the Mixed-policy learner with the real workload
//! generators, plus end-to-end TPC semantics through the index.

use lsm_ssd_repro::lsm_tree::policy::learn::{learn_mixed_params, LearnOptions};
use lsm_ssd_repro::lsm_tree::{LsmConfig, LsmTree, PolicySpec, RequestSource, TreeOptions};
use lsm_ssd_repro::workloads::{
    fill_to_bytes, reach_steady_state, run_requests, volume_requests, CostMeter, InsertRatio, Tpc,
    Uniform,
};

fn cfg() -> LsmConfig {
    LsmConfig {
        block_size: 512,
        payload_size: 20,
        k0_blocks: 8,
        gamma: 8,
        cache_blocks: 128,
        merge_rate: 0.1,
        ..LsmConfig::default()
    }
}

#[test]
fn learner_fits_beta_and_improves_over_choosebest_at_small_bottom() {
    let dataset = 300 * 1024;
    let measure = volume_requests(4.0, cfg().record_size());

    // Baseline ChooseBest.
    let mut wl = Uniform::new(21, 1 << 30, 20, InsertRatio::INSERT_ONLY);
    let mut base = LsmTree::with_mem_device(
        cfg(),
        TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
        1 << 17,
    )
    .unwrap();
    fill_to_bytes(&mut base, &mut wl, dataset).unwrap();
    reach_steady_state(&mut base, &mut wl, 5_000_000).unwrap();
    let meter = CostMeter::start(&base);
    run_requests(&mut base, &mut wl, measure).unwrap();
    let c_base = meter.read(&base).writes_per_mb;

    // Learned Mixed.
    let mut wl = Uniform::new(21, 1 << 30, 20, InsertRatio::INSERT_ONLY);
    let mut tree = LsmTree::with_mem_device(
        cfg(),
        TreeOptions::builder().policy(PolicySpec::TestMixed).build(),
        1 << 17,
    )
    .unwrap();
    fill_to_bytes(&mut tree, &mut wl, dataset).unwrap();
    reach_steady_state(&mut tree, &mut wl, 5_000_000).unwrap();
    wl.set_ratio(InsertRatio::HALF);
    let opts = LearnOptions {
        cycles_per_measurement: 1,
        max_requests_per_measurement: 3_000_000,
        ..LearnOptions::default()
    };
    let report = learn_mixed_params(&mut tree, &mut wl, &opts).unwrap();
    assert_eq!(tree.policy_name(), "Mixed");
    // h = 3 here: only β is learned, and with a small bottom level the
    // paper says full merges into it win.
    assert!(report.params.beta, "β should be true at a small bottom level");

    let meter = CostMeter::start(&tree);
    run_requests(&mut tree, &mut wl, measure).unwrap();
    let c_mixed = meter.read(&tree).writes_per_mb;
    assert!(
        c_mixed < c_base * 1.02,
        "learned Mixed ({c_mixed:.0}/MB) must beat or tie ChooseBest ({c_base:.0}/MB)"
    );
}

#[test]
fn learner_is_noop_safe_on_two_level_tree() {
    // h = 2: nothing to learn; the learner must not hang or panic and
    // must leave a working Mixed policy installed.
    let mut tree = LsmTree::with_mem_device(cfg(), TreeOptions::default(), 1 << 16).unwrap();
    let mut wl = Uniform::new(23, 1 << 30, 20, InsertRatio::HALF);
    for _ in 0..500 {
        tree.apply(wl.next_request()).unwrap();
    }
    assert_eq!(tree.height(), 2);
    let opts = LearnOptions { max_requests_per_measurement: 50_000, ..LearnOptions::default() };
    let report = learn_mixed_params(&mut tree, &mut wl, &opts).unwrap();
    assert!(report.params.thresholds.is_empty());
    tree.put(42, vec![1u8; 20]).unwrap();
    assert!(tree.get(42).unwrap().is_some());
}

#[test]
fn tpc_workload_round_trips_through_the_index() {
    let mut tree = LsmTree::with_mem_device(cfg(), TreeOptions::default(), 1 << 16).unwrap();
    let mut tpc = Tpc::new(31, 4, 10, 20, InsertRatio::INSERT_ONLY);
    let mut inserted = Vec::new();
    for _ in 0..20_000 {
        let req = tpc.next_request();
        if let lsm_ssd_repro::lsm_tree::Request::Put(k, _) = &req {
            inserted.push(*k);
        }
        tree.apply(req).unwrap();
    }
    // Every order the generator issued is in the index.
    for &k in inserted.iter().step_by(37) {
        assert!(tree.get(k).unwrap().is_some(), "order {k:x} lost");
    }
    // Deliveries: switch to delete-heavy and drain; the index must agree
    // with the generator's live-order count at the end.
    tpc.set_ratio(InsertRatio(0.2));
    for _ in 0..20_000 {
        tree.apply(tpc.next_request()).unwrap();
    }
    let scanned = tree.scan(0, u64::MAX).count();
    assert_eq!(scanned, tpc.live_orders());
    lsm_ssd_repro::lsm_tree::verify::check_tree(&tree, true).unwrap();
}

#[test]
fn normal_workload_creates_higher_preservation_than_uniform() {
    // §V-B: skew concentrates keys and raises block-preservation rates.
    let run = |kind: u8| -> f64 {
        let mut tree = LsmTree::with_mem_device(cfg(), TreeOptions::default(), 1 << 17).unwrap();
        let mut uni = Uniform::new(41, 1 << 30, 20, InsertRatio::INSERT_ONLY);
        let mut norm = lsm_ssd_repro::workloads::Normal::new(
            41,
            1 << 30,
            20,
            InsertRatio::INSERT_ONLY,
            0.002,
            2_000,
        );
        for _ in 0..30_000 {
            let req = if kind == 0 { uni.next_request() } else { norm.next_request() };
            tree.apply(req).unwrap();
        }
        let s = tree.stats();
        s.total_blocks_preserved() as f64
            / (s.total_blocks_preserved() + s.total_blocks_written()).max(1) as f64
    };
    let uni_rate = run(0);
    let norm_rate = run(1);
    assert!(
        norm_rate > uni_rate,
        "skewed inserts should preserve more blocks: normal {norm_rate:.3} vs uniform {uni_rate:.3}"
    );
}
