//! Crash-torture suite: randomized workloads over a fault-injecting device,
//! power cuts at random device-op counts across hundreds of seeds, recovery,
//! and the durability invariant (see `lsm_tree::torture`).
//!
//! The smoke test runs on every `cargo test`; the soak (thousands of seeds)
//! is `#[ignore]`d and run explicitly:
//!
//! ```sh
//! cargo test --release --test crash_torture -- --ignored
//! ```

use std::sync::Arc;

use lsm_ssd_repro::lsm_tree::observe::{Event, EventSink, SinkHandle, VecSink};
use lsm_ssd_repro::lsm_tree::{
    run_crash_cycle, LsmConfig, LsmTree, PolicySpec, TortureConfig, TreeOptions,
};
use lsm_ssd_repro::sim_ssd::{BlockDevice, FaultDevice, FaultPlan, MemDevice};

fn torture_range(lo: u64, hi: u64) {
    let mut mid_workload_cuts = 0u64;
    let mut failures = Vec::new();
    for seed in lo..hi {
        match run_crash_cycle(&TortureConfig::for_seed(seed)) {
            Ok(report) => {
                assert!(report.matched_prefix >= report.durable_floor, "{report:?}");
                assert!(report.matched_prefix <= report.issued, "{report:?}");
                if report.cut_mid_workload {
                    mid_workload_cuts += 1;
                }
            }
            Err(e) => failures.push(e.to_string()),
        }
    }
    assert!(
        failures.is_empty(),
        "{} cycles violated durability:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // The cut window is sized so most cuts land mid-workload; if almost
    // none do, the test is quietly exercising only the forced end-of-run
    // cut and has lost its value.
    let total = hi - lo;
    assert!(
        mid_workload_cuts * 4 >= total,
        "only {mid_workload_cuts}/{total} cuts fired mid-workload"
    );
}

/// Smoke: 200 seeds, each with one power cut at a random device op.
#[test]
fn two_hundred_seeded_power_cuts_recover() {
    torture_range(0, 200);
}

/// Soak: thousands of seeds. Run explicitly with `-- --ignored`.
#[test]
#[ignore = "multi-minute soak; run with -- --ignored"]
fn soak_thousands_of_seeded_power_cuts() {
    torture_range(200, 3200);
}

fn small_cfg() -> LsmConfig {
    LsmConfig {
        block_size: 256,
        payload_size: 4,
        k0_blocks: 4,
        gamma: 4,
        cache_blocks: 16,
        merge_rate: 0.25,
        ..LsmConfig::default()
    }
}

fn run_workload(tree: &mut LsmTree) {
    for k in 0..900u64 {
        tree.put(k * 13 % 509, vec![(k % 251) as u8; 4]).unwrap();
        if k % 5 == 0 {
            tree.delete(k * 7 % 509).unwrap();
        }
    }
}

/// A transient write fault in the middle of a merge cascade, absorbed by
/// the store's retry on the **same** block id, must leave the tree
/// byte-identical to a fault-free twin fed the same workload.
#[test]
fn transient_mid_merge_fault_leaves_tree_byte_identical() {
    let clean_dev = Arc::new(MemDevice::with_block_size(1 << 14, 256));
    let mut clean = LsmTree::new(
        small_cfg(),
        TreeOptions::builder().policy(PolicySpec::ChooseBest).build(),
        Arc::clone(&clean_dev) as Arc<dyn BlockDevice>,
    )
    .unwrap();

    let sink = Arc::new(VecSink::new());
    let faulty_dev =
        Arc::new(FaultDevice::new(Arc::new(MemDevice::with_block_size(1 << 14, 256)), 9));
    // Writes 40, 90, and 170 land well past the first memtable flush, i.e.
    // inside later merge cascades; each fails once and is retried.
    faulty_dev.set_plan(FaultPlan::none().fail_write_at(40).fail_write_at(90).fail_write_at(170));
    let mut faulty = LsmTree::new(
        small_cfg(),
        TreeOptions::builder()
            .policy(PolicySpec::ChooseBest)
            .sink(SinkHandle::new(Arc::clone(&sink) as Arc<dyn EventSink>))
            .build(),
        Arc::clone(&faulty_dev) as Arc<dyn BlockDevice>,
    )
    .unwrap();

    run_workload(&mut clean);
    run_workload(&mut faulty);

    let retries =
        sink.drain().into_iter().filter(|e| matches!(e, Event::RetryAttempt { .. })).count();
    assert!(retries >= 3, "expected the 3 scheduled faults to be retried, saw {retries}");

    // Identical structure: same levels, same handles, same block ids.
    assert_eq!(clean.levels().len(), faulty.levels().len());
    for (lc, lf) in clean.levels().iter().zip(faulty.levels()) {
        assert_eq!(lc.num_blocks(), lf.num_blocks());
        for (hc, hf) in lc.handles().iter().zip(lf.handles()) {
            assert_eq!(hc.id, hf.id);
            assert_eq!(
                (hc.min, hc.max, hc.count, hc.tombstones),
                (hf.min, hf.max, hf.count, hf.tombstones)
            );
        }
    }
    // Identical bytes: every referenced frame reads back the same through
    // both devices (the retry reused the same id, so even physical layout
    // matches).
    for level in clean.levels() {
        for h in level.handles() {
            let a = clean_dev.read(h.id).unwrap();
            let b = faulty_dev.read(h.id).unwrap();
            assert_eq!(a, b, "frame {} differs between twins", h.id.raw());
        }
    }
    // And identical logical content.
    for k in 0..509u64 {
        assert_eq!(clean.get(k).unwrap(), faulty.get(k).unwrap(), "key {k}");
    }
}
