//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched` — with a
//! simple wall-clock median instead of criterion's statistical engine.
//! Results print as `group/name  <time>/iter`; there is no HTML report,
//! no outlier analysis, and measurement/warm-up times are treated as
//! upper bounds rather than targets so runs stay quick.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    _priv: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _priv: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), measurement_time: Duration::from_millis(200) }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Cap the budget: the stub reports a rough figure, not statistics.
        self.measurement_time = d.min(Duration::from_millis(300));
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { budget: self.measurement_time, total: Duration::ZERO, iters: 0 };
        f(&mut b);
        b.report(&self.name, &name.to_string());
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { budget: self.measurement_time, total: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration, then time until the budget runs out.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let overall = Instant::now();
        while total < self.budget && overall.elapsed() < 4 * self.budget && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.total = total;
        self.iters = iters.max(1);
    }

    fn report(&self, group: &str, name: &str) {
        let per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
        let human = if per_iter >= 1e9 {
            format!("{:.3} s", per_iter / 1e9)
        } else if per_iter >= 1e6 {
            format!("{:.3} ms", per_iter / 1e6)
        } else if per_iter >= 1e3 {
            format!("{:.3} µs", per_iter / 1e3)
        } else {
            format!("{per_iter:.0} ns")
        };
        println!("bench {label:<50} {human}/iter ({} iters)", self.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
