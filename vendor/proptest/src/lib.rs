//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace tests use: the
//! `proptest!`/`prop_oneof!`/`prop_assert*!`/`prop_assume!` macros, the
//! `Strategy` trait with `prop_map` and `boxed`, `any::<T>()`, integer
//! range strategies, tuple strategies, and `prop::collection::{vec,
//! btree_map, btree_set}`.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   seed; there is no minimization pass.
//! - **Deterministic seeding.** Case `i` of test `f` derives its RNG seed
//!   from `fnv(f) + i`, so failures reproduce exactly across runs.
//! - `prop_assert*!` maps to `assert*!` (panic instead of `Err`).

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 generator used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D123_4567 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling keeps small ranges unbiased.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    pub fn size_in(&mut self, range: &Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

/// Stable seed for a named test, mixed with the case index by the
/// `proptest!` macro expansion.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

/// Mirror of `proptest::test_runner::Config` with the one field the
/// workspace sets. Defaults to fewer cases than upstream (256) to keep
/// the offline suite fast.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_local_rejects: u32,
    pub max_global_rejects: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
            max_shrink_iters: 4_096,
        }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! needs a positive weight");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a full-domain "arbitrary" strategy via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `A`'s domain.
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

// ---------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.size_in(&self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.size_in(&self.size);
            let mut out = BTreeSet::new();
            // Duplicate draws would undershoot the requested size; retry a
            // bounded number of times so narrow domains still terminate.
            let mut attempts = 0usize;
            while out.len() < n && attempts < 10 * n + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.size_in(&self.size);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < 10 * n + 100 {
                out.insert(self.keys.generate(rng), self.values.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Run each contained test function over `cases` generated inputs.
///
/// Unlike upstream proptest, the `#[test]` attribute on each function is
/// passed through verbatim (the workspace tests all write it explicitly).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(stringify!($name));
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::new(
                    __seed.wrapping_add(__case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current generated case when its inputs don't satisfy a
/// precondition. Expands to `continue` in the per-case loop generated by
/// `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16 })]

        /// Macro self-test: bindings, assume, and oneof all expand.
        #[test]
        fn macro_roundtrip(x in 0u64..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            let y = prop_oneof![2 => (0u64..10), 1 => (50u64..60)].generate(
                &mut crate::TestRng::new(x),
            );
            prop_assert!(y < 10 || (50..60).contains(&y));
            prop_assert_eq!(flag, flag);
        }
    }
}
