//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of the parking_lot API it actually uses:
//! `Mutex` and `RwLock` with non-poisoning `lock`/`read`/`write`, and a
//! `Condvar` with non-poisoning waits. Poisoned std locks are recovered
//! transparently (`into_inner`), which matches parking_lot's behaviour of
//! not propagating panics.
//!
//! One deliberate API deviation: since `MutexGuard` here is the std guard,
//! `Condvar::wait` takes the guard by value and returns it (std style)
//! instead of parking_lot's `&mut` signature.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting. Std-style
    /// signature (guard in, guard out); poisoning is swallowed.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Block until notified or `timeout` elapses (std-style signature;
    /// poisoning is swallowed). Watchdog-style callers use the result to
    /// tell progress from a hang.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, r)) => (g, WaitTimeoutResult(r.timed_out())),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, WaitTimeoutResult(r.timed_out()))
            }
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because the timeout
/// elapsed rather than a notification.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
