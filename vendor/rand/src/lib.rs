//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workloads crate uses: `Rng` (with `gen` and
//! `gen_range`), `SeedableRng::seed_from_u64`, and `rngs::StdRng`. The
//! generator is xoshiro256++ seeded via splitmix64 — deterministic for a
//! given seed, statistically solid for workload generation, but NOT the
//! same stream as the real crate's StdRng (callers only rely on
//! determinism, not on specific values).

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling layer over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a value from the "standard" distribution for its type:
    /// uniform over the full integer domain, `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli(p) draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the stub has a single generator quality tier.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
