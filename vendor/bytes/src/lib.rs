//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: `Bytes` (cheaply clonable
//! immutable byte buffer), `BytesMut` (growable builder that freezes into
//! `Bytes`), and the `BufMut` write helpers (`put_u8`, `put_u32_le`, ...).
//! Unlike the real crate there is no zero-copy slicing machinery; `Bytes`
//! is a plain `Arc<[u8]>`, which is all the callers need.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes { data: Arc::from(slice) }
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes { data: Arc::from(slice) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Self {
        Bytes::from_static(slice)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(slice: &'static [u8; N]) -> Self {
        Bytes::from_static(slice)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

/// Growable byte buffer; freeze into an immutable `Bytes` when done.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian write helpers, mirroring the real crate's `BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}
